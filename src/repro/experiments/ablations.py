"""Ablations of the design choices Section III-A1 motivates.

The paper quantifies several choices in prose; each gets its own ablation:

* **Split dimension** — using the max-variance dimension costs up to 18 %
  extra construction but improves query time by up to 43 % versus a simple
  max-range rule (``run_split_dimension_ablation``).
* **Bucket size** — larger buckets speed up construction but slow down
  querying; 32 is the paper's empirical sweet spot
  (``run_bucket_size_ablation``).
* **Histogram binning** — the 32-stride sub-interval SIMD scan beats a
  binary search by up to 42 % during local construction
  (``run_binning_ablation``).
* **Distribution strategy** — one global kd-tree versus independent local
  trees: local-only construction is cheaper but every query must visit all
  ranks and ``P*k`` candidates cross the network
  (``run_strategy_ablation``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.baselines.local_only import LocalTreesKNN
from repro.cluster.cost_model import CostModel
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import MetricsRegistry
from repro.core.config import PandaConfig
from repro.core.panda import PandaKNN
from repro.datasets.registry import load_dataset
from repro.experiments.common import scaled_machine
from repro.kdtree.build import build_kdtree
from repro.kdtree.median import searchsorted_binning, subinterval_binning
from repro.kdtree.query import batch_knn
from repro.kdtree.tree import KDTreeConfig
from repro.perf.report import format_table


def _model_single_node(tree, qstats, machine: MachineSpec, threads: int) -> tuple[float, float]:
    """Modeled (construction, query) seconds for a single-node tree run."""
    registry = MetricsRegistry(1)
    for name, counters in tree.stats.phase_counters.items():
        with registry.phase(name):
            pass
        registry.rank(0).phase(name).merge(counters)
    with registry.phase("query"):
        qstats.charge(registry.for_phase(0), tree.dims)
    model = CostModel(machine=machine, threads_per_rank=threads)
    construction_phases = [p for p in registry.phase_order if p != "query"]
    construction = model.evaluate(registry, phases=construction_phases, threads=threads).total_s
    query = model.evaluate(registry, phases=["query"], threads=threads).total_s
    return construction, query


# ---------------------------------------------------------------------------
# Split-dimension choice
# ---------------------------------------------------------------------------
@dataclass
class SplitDimensionAblation:
    """Construction/query cost of variance vs max-extent split dimension."""

    per_dataset: Dict[str, Dict[str, Dict[str, float]]]

    @property
    def text(self) -> str:
        """Formatted comparison."""
        rows = []
        for name, strategies in self.per_dataset.items():
            for strategy, values in strategies.items():
                rows.append([name, strategy, values["construction"], values["query"],
                             values["nodes_per_query"]])
        return format_table(
            ["dataset", "split-dim rule", "construction (s)", "query (s)", "nodes/query"],
            rows,
            title="Ablation: split-dimension rule (Section III-A1)",
        )

    def construction_overhead(self, dataset: str) -> float:
        """Extra construction cost of the variance rule vs max-extent."""
        d = self.per_dataset[dataset]
        return d["variance"]["construction"] / d["max_extent"]["construction"] - 1.0

    def query_improvement(self, dataset: str) -> float:
        """Query-time improvement of the variance rule vs max-extent."""
        d = self.per_dataset[dataset]
        return 1.0 - d["variance"]["query"] / d["max_extent"]["query"]


def run_split_dimension_ablation(
    datasets: Sequence[str] = ("cosmo_thin", "dayabay_thin"),
    scale: float = 1.0,
    k: int = 5,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> SplitDimensionAblation:
    """Compare the variance split-dimension rule against max-extent."""
    machine = machine or MachineSpec.edison()
    per_dataset: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in datasets:
        spec = load_dataset(name)
        n_points = max(2_000, int(round(spec.n_points * scale)))
        points = spec.points(seed=seed, n_points=n_points)
        queries = spec.queries(points, seed=seed)
        per_dataset[name] = {}
        for strategy in ("variance", "max_extent"):
            config = KDTreeConfig(split_dim_strategy=strategy)
            tree = build_kdtree(points, config=config, threads=machine.cores_per_node)
            _, _, qstats = batch_knn(tree, queries, k)
            construction, query = _model_single_node(tree, qstats, machine, machine.cores_per_node)
            per_dataset[name][strategy] = {
                "construction": construction,
                "query": query,
                "nodes_per_query": qstats.nodes_visited / max(qstats.queries, 1),
                "depth": float(tree.depth()),
            }
    return SplitDimensionAblation(per_dataset=per_dataset)


# ---------------------------------------------------------------------------
# Bucket size
# ---------------------------------------------------------------------------
@dataclass
class BucketSizeAblation:
    """Construction/query cost as a function of the leaf bucket size."""

    bucket_sizes: List[int]
    construction: List[float]
    query: List[float]
    combined: List[float]

    @property
    def best_bucket_size(self) -> int:
        """Bucket size minimising construction + query time."""
        return self.bucket_sizes[int(np.argmin(self.combined))]

    @property
    def text(self) -> str:
        """Formatted sweep."""
        rows = [
            [b, c, q, t]
            for b, c, q, t in zip(self.bucket_sizes, self.construction, self.query, self.combined)
        ]
        return format_table(
            ["bucket_size", "construction (s)", "query (s)", "combined (s)"],
            rows,
            title="Ablation: leaf bucket size",
        )


def run_bucket_size_ablation(
    dataset: str = "cosmo_thin",
    bucket_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
    scale: float = 1.0,
    k: int = 5,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> BucketSizeAblation:
    """Sweep the leaf bucket size (the paper finds 32 to be best)."""
    machine = machine or MachineSpec.edison()
    spec = load_dataset(dataset)
    n_points = max(2_000, int(round(spec.n_points * scale)))
    points = spec.points(seed=seed, n_points=n_points)
    queries = spec.queries(points, seed=seed)
    construction_times: List[float] = []
    query_times: List[float] = []
    for bucket in bucket_sizes:
        config = KDTreeConfig(bucket_size=bucket)
        tree = build_kdtree(points, config=config, threads=machine.cores_per_node)
        _, _, qstats = batch_knn(tree, queries, k)
        construction, query = _model_single_node(tree, qstats, machine, machine.cores_per_node)
        construction_times.append(construction)
        query_times.append(query)
    combined = [c + q for c, q in zip(construction_times, query_times)]
    return BucketSizeAblation(
        bucket_sizes=list(bucket_sizes),
        construction=construction_times,
        query=query_times,
        combined=combined,
    )


# ---------------------------------------------------------------------------
# Histogram binning
# ---------------------------------------------------------------------------
@dataclass
class BinningAblation:
    """Modeled binning cost: sub-interval scan vs binary search."""

    n_values: int
    n_intervals: int
    subinterval_ops: int
    searchsorted_ops: int
    subinterval_seconds: float
    searchsorted_seconds: float
    counts_identical: bool

    @property
    def improvement(self) -> float:
        """Fractional improvement of the sub-interval scan."""
        if self.searchsorted_seconds <= 0:
            return 0.0
        return 1.0 - self.subinterval_seconds / self.searchsorted_seconds

    @property
    def text(self) -> str:
        """Formatted comparison."""
        rows = [
            ["sub-interval (SIMD scan)", self.subinterval_ops, self.subinterval_seconds],
            ["binary search", self.searchsorted_ops, self.searchsorted_seconds],
        ]
        return format_table(
            ["binning", "modeled ops", "modeled seconds"],
            rows,
            title=f"Ablation: histogram binning ({self.n_values} values, "
                  f"{self.n_intervals} interval points)",
        )


def run_binning_ablation(
    dataset: str = "cosmo_thin",
    n_intervals: int = 1024,
    scale: float = 1.0,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> BinningAblation:
    """Compare the sub-interval histogram binning against binary search."""
    machine = machine or MachineSpec.edison()
    spec = load_dataset(dataset)
    n_points = max(2_000, int(round(spec.n_points * scale)))
    points = spec.points(seed=seed, n_points=n_points)
    values = points[:, 0]
    rng = np.random.default_rng(seed)
    intervals = np.unique(rng.choice(values, size=min(n_intervals, values.size), replace=False))

    counts_sub, ops_sub = subinterval_binning(values, intervals)
    counts_bin, ops_bin = searchsorted_binning(values, intervals)

    # Model: the binary search pays a branch-misprediction penalty per
    # comparison; the sub-interval scan is branch-free and SIMD-amortised.
    scan_rate = machine.scalar_rate(machine.cores_per_node) * machine.simd_width_doubles / 2.0
    branchy_rate = machine.scalar_rate(machine.cores_per_node) / 4.0
    sub_seconds = ops_sub / scan_rate
    bin_seconds = ops_bin / branchy_rate
    return BinningAblation(
        n_values=int(values.size),
        n_intervals=int(intervals.size),
        subinterval_ops=int(ops_sub),
        searchsorted_ops=int(ops_bin),
        subinterval_seconds=float(sub_seconds),
        searchsorted_seconds=float(bin_seconds),
        counts_identical=bool(np.array_equal(counts_sub, counts_bin)),
    )


# ---------------------------------------------------------------------------
# Distribution strategy
# ---------------------------------------------------------------------------
@dataclass
class StrategyAblation:
    """Global-tree PANDA versus independent per-rank trees."""

    panda_construction: float
    panda_query: float
    panda_query_bytes: int
    local_only_construction: float
    local_only_query: float
    local_only_query_bytes: int
    n_ranks: int
    k: int
    n_queries: int

    @property
    def query_traffic_ratio(self) -> float:
        """Local-only query traffic divided by PANDA's."""
        return self.local_only_query_bytes / max(self.panda_query_bytes, 1)

    @property
    def text(self) -> str:
        """Formatted comparison."""
        rows = [
            ["panda (global tree)", self.panda_construction, self.panda_query, self.panda_query_bytes],
            ["independent local trees", self.local_only_construction, self.local_only_query,
             self.local_only_query_bytes],
        ]
        return format_table(
            ["strategy", "construction (s)", "query (s)", "query traffic (bytes)"],
            rows,
            title=f"Ablation: distribution strategy (P={self.n_ranks}, k={self.k}, "
                  f"{self.n_queries} queries)",
        )


def run_strategy_ablation(
    dataset: str = "cosmo_small",
    n_ranks: int = 8,
    scale: float = 0.5,
    k: int = 5,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> StrategyAblation:
    """Compare the global-tree strategy against independent local trees."""
    machine = scaled_machine(machine)
    spec = load_dataset(dataset)
    n_points = max(4_000, int(round(spec.n_points * scale)))
    points = spec.points(seed=seed, n_points=n_points)
    queries = spec.queries(points, seed=seed)

    # PANDA with the global tree.
    index = PandaKNN(n_ranks=n_ranks, machine=machine, config=PandaConfig()).fit(points)
    index.query(queries, k=k)
    panda_construction = index.construction_time().total_s
    panda_query = index.query_time().total_s
    panda_bytes = sum(
        index.cluster.metrics.rank(r).phase(p).bytes_sent
        for r in range(n_ranks)
        for p in index.cluster.metrics.rank(r).phases
        if p.startswith("query_")
    )

    # Independent local trees (strategy 1).
    local = LocalTreesKNN(n_ranks=n_ranks, machine=machine).fit(points)
    local.query(queries, k=k)
    model = CostModel(machine=machine, threads_per_rank=local.cluster.threads_per_rank)
    lo_construction = model.evaluate(local.cluster.metrics, phases=["lo_local_build"]).total_s
    lo_query = model.evaluate(
        local.cluster.metrics,
        phases=["lo_broadcast_queries", "lo_search_all_ranks", "lo_topk_reduce"],
    ).total_s
    lo_bytes = sum(
        local.cluster.metrics.rank(r).phase(p).bytes_sent
        for r in range(n_ranks)
        for p in local.cluster.metrics.rank(r).phases
        if p.startswith("lo_") and p != "lo_local_build"
    )
    return StrategyAblation(
        panda_construction=panda_construction,
        panda_query=panda_query,
        panda_query_bytes=int(panda_bytes),
        local_only_construction=lo_construction,
        local_only_query=lo_query,
        local_only_query_bytes=int(lo_bytes),
        n_ranks=n_ranks,
        k=k,
        n_queries=queries.shape[0],
    )
