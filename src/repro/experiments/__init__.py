"""Paper-reproduction experiment drivers.

One module per table/figure of the paper's evaluation section; each driver
returns structured results (and can format them as the text table / series
the paper reports) and is wrapped by a benchmark under ``benchmarks/``.

=============  =====================================================
Module         Paper artefact
=============  =====================================================
``table1``     Table I — dataset attributes and PANDA times
``fig4``       Fig. 4 — strong scaling (cosmo, plasma, dayabay)
``fig5``       Fig. 5 — weak scaling + construction/query breakdowns
``fig6``       Fig. 6 — single-node thread scaling
``fig7``       Fig. 7 — comparison with FLANN and ANN
``fig8``       Fig. 8 / Table II — Knights Landing experiments
``science``    Section V-C — Daya Bay classification accuracy
``ablations``  Section III-A1 design-choice ablations
=============  =====================================================
"""

from repro.experiments.table1 import run_table1
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5a, run_fig5b, run_fig5c
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.fig8 import run_fig8a, run_fig8b, run_fig8c
from repro.experiments.science import run_science_accuracy
from repro.experiments.ablations import (
    run_binning_ablation,
    run_bucket_size_ablation,
    run_split_dimension_ablation,
    run_strategy_ablation,
)

__all__ = [
    "run_table1",
    "run_fig4",
    "run_fig5a",
    "run_fig5b",
    "run_fig5c",
    "run_fig6",
    "run_fig7",
    "run_fig8a",
    "run_fig8b",
    "run_fig8c",
    "run_science_accuracy",
    "run_split_dimension_ablation",
    "run_bucket_size_ablation",
    "run_binning_ablation",
    "run_strategy_ablation",
]
