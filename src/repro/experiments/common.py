"""Shared helpers for the paper-reproduction experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.core.config import PandaConfig
from repro.core.panda import PandaKNN
from repro.core.query_engine import QueryReport
from repro.datasets.registry import DatasetSpec, load_dataset


#: The reproduction's datasets are ~10^3-10^4x smaller than the paper's, so
#: per-rank computation and transferred bytes shrink by that factor while
#: the fixed per-message network latency does not.  The experiment drivers
#: therefore evaluate the cost model with the interconnect latency scaled by
#: this factor, restoring the compute-to-latency balance of the paper's
#: operating regime (documented in EXPERIMENTS.md).
DEFAULT_LATENCY_SCALE = 1e-3


def scaled_machine(machine: Optional[MachineSpec] = None,
                   latency_scale: float = DEFAULT_LATENCY_SCALE) -> MachineSpec:
    """Machine spec used by the reproduction experiments (scaled latency)."""
    machine = machine or MachineSpec.edison()
    return machine.with_scaled_latency(latency_scale)


@dataclass
class PandaRun:
    """The artefacts of one full PANDA pipeline run on a named dataset."""

    dataset: str
    n_points: int
    n_queries: int
    n_ranks: int
    k: int
    index: PandaKNN
    report: QueryReport
    construction_time: float
    query_time: float
    extra: Dict[str, float] = field(default_factory=dict)


def scaled_size(spec: DatasetSpec, scale: float) -> int:
    """Scale a dataset's point count, keeping at least a workable minimum."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return max(2_000, int(round(spec.n_points * scale)))


def run_panda_on_dataset(
    name: str,
    scale: float = 1.0,
    n_ranks: Optional[int] = None,
    k: Optional[int] = None,
    machine: Optional[MachineSpec] = None,
    config: Optional[PandaConfig] = None,
    seed: int = 0,
    query_scale: float = 1.0,
) -> PandaRun:
    """Run construction + querying of PANDA on a registry dataset.

    Parameters
    ----------
    name:
        Registry dataset name (e.g. ``"cosmo_large"``).
    scale:
        Multiplier on the registry's reduced-scale point count (benchmarks
        use < 1 to stay fast; examples use 1).
    n_ranks, k, machine, config:
        Overrides of the registry / default values.
    seed:
        Seed for data generation and query selection.
    query_scale:
        Multiplier on the number of queries derived from the dataset's
        query fraction.
    """
    spec = load_dataset(name)
    n_points = scaled_size(spec, scale)
    points = spec.points(seed=seed, n_points=n_points)
    queries = spec.queries(points, seed=seed)
    if query_scale != 1.0:
        n_q = max(1, int(round(queries.shape[0] * query_scale)))
        queries = queries[:n_q] if n_q <= queries.shape[0] else queries
    ranks = n_ranks if n_ranks is not None else spec.n_ranks
    k_val = k if k is not None else spec.k
    machine = machine or scaled_machine()
    config = config or PandaConfig()

    index = PandaKNN(n_ranks=ranks, machine=machine, config=config).fit(points)
    report = index.query(queries, k=k_val)
    return PandaRun(
        dataset=name,
        n_points=points.shape[0],
        n_queries=queries.shape[0],
        n_ranks=ranks,
        k=k_val,
        index=index,
        report=report,
        construction_time=index.construction_time().total_s,
        query_time=index.query_time().total_s,
        extra={
            "load_imbalance": index.load_imbalance(),
            "mean_remote_fanout": report.mean_remote_fanout,
            "fraction_sent_remote": report.fraction_sent_remote,
        },
    )


def paper_core_counts_to_ranks(cores: int, cores_per_node: int = 24) -> int:
    """Translate a paper core count into a node/rank count."""
    if cores <= 0:
        raise ValueError(f"cores must be positive, got {cores}")
    return max(1, cores // cores_per_node)


def geometric_rank_sweep(start: int, end: int) -> list[int]:
    """Powers-of-two sweep from ``start`` to ``end`` inclusive."""
    if start <= 0 or end < start:
        raise ValueError(f"invalid sweep bounds: start={start}, end={end}")
    sweep = []
    r = start
    while r <= end:
        sweep.append(r)
        r *= 2
    return sweep


def subsample_queries(points: np.ndarray, fraction: float, seed: int = 0) -> np.ndarray:
    """Pick a random fraction of the points as queries."""
    rng = np.random.default_rng(seed)
    n_queries = max(1, int(round(points.shape[0] * fraction)))
    idx = rng.choice(points.shape[0], size=min(n_queries, points.shape[0]), replace=False)
    return points[idx]
