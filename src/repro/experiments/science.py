"""Section V-C reproduction: Daya Bay 3-class classification accuracy.

The paper applies PANDA as a KNN classifier to the Daya Bay records (10-D
autoencoder embedding, 3 expert-annotated physics classes) and reports 87 %
accuracy with a plain majority vote, noting that distance-weighted voting is
an obvious refinement.  This driver trains/evaluates the distributed
classifier on the synthetic Daya Bay analogue and also reports the weighted
variant the paper anticipates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classification import KNNClassifier, train_test_split
from repro.datasets.dayabay import dayabay_records
from repro.perf.report import format_table

#: The accuracy the paper reports for the baseline majority-vote method.
PAPER_ACCURACY = 0.87


@dataclass
class ScienceResult:
    """Classification accuracies of the reproduced Daya Bay experiment."""

    accuracy_majority: float
    accuracy_weighted: float
    n_train: int
    n_test: int
    k: int
    paper_accuracy: float = PAPER_ACCURACY

    @property
    def text(self) -> str:
        """Formatted accuracy table."""
        rows = [
            ["majority vote (paper's method)", self.accuracy_majority, self.paper_accuracy],
            ["distance-weighted vote (extension)", self.accuracy_weighted, "-"],
        ]
        return format_table(
            ["method", "accuracy (reproduction)", "accuracy (paper)"],
            rows,
            title=f"Daya Bay 3-class KNN classification (k={self.k}, "
                  f"{self.n_train} train / {self.n_test} test)",
        )


def run_science_accuracy(
    n_records: int = 20_000,
    k: int = 5,
    n_ranks: int = 4,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> ScienceResult:
    """Reproduce the Daya Bay classification experiment at reduced scale."""
    points, labels = dayabay_records(n_records, seed=seed)
    rng = np.random.default_rng(seed)
    train_x, train_y, test_x, test_y = train_test_split(points, labels, test_fraction, rng)

    majority = KNNClassifier(k=k, n_ranks=n_ranks, weighted=False).fit(train_x, train_y)
    acc_majority = majority.score(test_x, test_y)

    weighted = KNNClassifier(k=k, n_ranks=n_ranks, weighted=True).fit(train_x, train_y)
    acc_weighted = weighted.score(test_x, test_y)

    return ScienceResult(
        accuracy_majority=acc_majority,
        accuracy_weighted=acc_weighted,
        n_train=train_x.shape[0],
        n_test=test_x.shape[0],
        k=k,
    )
