"""Figure 5 reproduction: weak scaling and the construction/query breakdowns.

* Fig. 5(a): weak scaling on the cosmology family — ~250M points per node in
  the paper (a fixed number of points per rank here), 64x more cores in the
  sweep; construction time grows by only 2.2x and querying by 1.5x.
* Fig. 5(b): construction time breakdown — global kd-tree construction and
  particle redistribution dominate (>75 % for the 3-D datasets; less for the
  10-D dayabay data where split-dimension selection makes the local tree
  relatively more expensive).
* Fig. 5(c): query time breakdown — local KNN dominates (up to 67 %),
  remote KNN is small for the 3-D datasets but large for dayabay (the
  co-located records force ~22 remote ranks per query), and only the
  non-overlapped part of communication is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.datasets.cosmology import cosmology_particles
from repro.experiments.common import run_panda_on_dataset, scaled_machine
from repro.perf.report import format_breakdown, format_scaling
from repro.perf.scaling import ScalingResult, run_weak_scaling

#: Datasets shown in the Fig. 5(b)/(c) breakdowns.
BREAKDOWN_DATASETS = ("cosmo_large", "plasma_large", "dayabay_large")


# ---------------------------------------------------------------------------
# Fig. 5(a): weak scaling
# ---------------------------------------------------------------------------
@dataclass
class Fig5aResult:
    """Weak-scaling series on the cosmology family."""

    scaling: ScalingResult
    construction_normalized: List[float]
    query_normalized: List[float]
    paper_construction_growth: float = 2.2
    paper_query_growth: float = 1.5

    @property
    def text(self) -> str:
        """Formatted normalised-time series (1.0 at the smallest rank count)."""
        return format_scaling(
            self.scaling.resources(),
            {
                "construction_time_norm": self.construction_normalized,
                "query_time_norm": self.query_normalized,
            },
            title="Fig. 5(a) weak scaling — cosmology",
        )


def run_fig5a(
    points_per_rank: int = 12_000,
    rank_counts: Sequence[int] = (2, 4, 8, 16),
    k: int = 5,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> Fig5aResult:
    """Weak scaling on synthetic cosmology data (constant points per rank)."""
    scaling = run_weak_scaling(
        generator=lambda n, s: cosmology_particles(n, seed=s),
        points_per_rank=points_per_rank,
        rank_counts=rank_counts,
        k=k,
        seed=seed,
        machine=scaled_machine(machine),
        label="weak-cosmo",
    )
    construction = np.asarray(scaling.construction_times())
    query = np.asarray(scaling.query_times())
    return Fig5aResult(
        scaling=scaling,
        construction_normalized=[float(x) for x in construction / construction[0]],
        query_normalized=[float(x) for x in query / query[0]],
    )


# ---------------------------------------------------------------------------
# Fig. 5(b) and 5(c): breakdowns
# ---------------------------------------------------------------------------
@dataclass
class BreakdownResult:
    """Per-dataset phase shares (fractions summing to 1)."""

    breakdowns: Dict[str, Dict[str, float]]
    title: str

    @property
    def text(self) -> str:
        """Formatted breakdown tables, one per dataset."""
        blocks = []
        for name, shares in self.breakdowns.items():
            blocks.append(format_breakdown(shares, title=f"{self.title} — {name}"))
        return "\n\n".join(blocks)


def run_fig5b(
    datasets: Sequence[str] = BREAKDOWN_DATASETS,
    scale: float = 0.5,
    seed: int = 0,
) -> BreakdownResult:
    """Construction-time breakdown per dataset (Fig. 5b)."""
    breakdowns: Dict[str, Dict[str, float]] = {}
    for name in datasets:
        run = run_panda_on_dataset(name, scale=scale, seed=seed, query_scale=0.1)
        breakdowns[name] = run.index.construction_breakdown()
    return BreakdownResult(breakdowns=breakdowns, title="Fig. 5(b) construction breakdown")


def run_fig5c(
    datasets: Sequence[str] = BREAKDOWN_DATASETS,
    scale: float = 0.5,
    seed: int = 0,
) -> BreakdownResult:
    """Query-time breakdown per dataset (Fig. 5c)."""
    breakdowns: Dict[str, Dict[str, float]] = {}
    for name in datasets:
        run = run_panda_on_dataset(name, scale=scale, seed=seed)
        breakdowns[name] = run.index.query_breakdown()
    return BreakdownResult(breakdowns=breakdowns, title="Fig. 5(c) query breakdown")
