"""Figure 4 reproduction: multinode strong scaling of construction and querying.

The paper fixes the dataset (cosmo_large, plasma_large or dayabay_large) and
increases the core count by 8x (4x for plasma), reporting the speedup of the
construction and query phases relative to the smallest core count.  The key
qualitative findings are:

* both phases scale, but querying scales better than construction (e.g.
  cosmo: 5.2x vs 4.3x on 8x more cores) because construction must
  redistribute the entire dataset while queries only move small payloads;
* construction scalability degrades as the global tree gets deeper with
  more nodes (plasma: 2.7x on 4x more cores).

This driver performs the same sweep over simulated rank counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.machine import MachineSpec
from repro.datasets.registry import load_dataset
from repro.experiments.common import scaled_machine
from repro.perf.report import format_scaling
from repro.perf.scaling import ScalingResult, run_strong_scaling

#: Default sweeps per dataset: scaled-down analogues of the paper's
#: 6144->49152, 12288->49152 and 768->6144 core sweeps (8x, 4x, 8x).
DEFAULT_SWEEPS = {
    "cosmo_large": (2, 4, 8, 16),
    "plasma_large": (4, 8, 16),
    "dayabay_large": (2, 4, 8, 16),
}

#: Paper speedups at the largest core count (construction, querying).
PAPER_SPEEDUPS = {
    "cosmo_large": (4.3, 5.2),
    "plasma_large": (2.7, 4.4),
    "dayabay_large": (6.5, 6.6),
}


@dataclass
class Fig4Result:
    """Strong-scaling series for one dataset."""

    dataset: str
    scaling: ScalingResult
    construction_speedup: List[float]
    query_speedup: List[float]
    paper_construction_speedup: float
    paper_query_speedup: float

    @property
    def text(self) -> str:
        """Formatted series matching the paper's figure axes."""
        return format_scaling(
            self.scaling.resources(),
            {
                "construction_speedup": self.construction_speedup,
                "query_speedup": self.query_speedup,
            },
            title=f"Fig. 4 strong scaling — {self.dataset}",
        )


def run_fig4(
    dataset: str = "cosmo_large",
    rank_counts: Sequence[int] | None = None,
    scale: float = 1.0,
    k: int = 5,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> Fig4Result:
    """Strong-scaling sweep for one of the Fig. 4 datasets."""
    spec = load_dataset(dataset)
    rank_counts = tuple(rank_counts or DEFAULT_SWEEPS.get(dataset, (2, 4, 8)))
    n_points = max(4_000, int(round(spec.n_points * scale)))
    points = spec.points(seed=seed, n_points=n_points)
    queries = spec.queries(points, seed=seed)
    scaling = run_strong_scaling(
        points, queries, rank_counts, k=k, machine=scaled_machine(machine), label=dataset
    )
    paper_c, paper_q = PAPER_SPEEDUPS.get(dataset, (float("nan"), float("nan")))
    return Fig4Result(
        dataset=dataset,
        scaling=scaling,
        construction_speedup=[float(s) for s in scaling.construction_speedup()],
        query_speedup=[float(s) for s in scaling.query_speedup()],
        paper_construction_speedup=paper_c,
        paper_query_speedup=paper_q,
    )


def run_fig4_all(
    scale: float = 0.5, seed: int = 0, machine: MachineSpec | None = None
) -> Dict[str, Fig4Result]:
    """Run the sweep for all three Fig. 4 datasets."""
    return {
        name: run_fig4(name, scale=scale, seed=seed, machine=machine)
        for name in DEFAULT_SWEEPS
    }
