"""Table I reproduction: dataset attributes and PANDA construction/query times.

The paper's Table I lists, for every dataset, the particle count, the
dimensionality, the kd-tree construction time, k, the query fraction, the
query time and the core count.  This driver runs the reduced-scale analogue
of each dataset through the full PANDA pipeline and reports both the paper's
values and the modeled times of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.common import run_panda_on_dataset
from repro.perf.report import format_table

#: Datasets appearing in Table I, in the paper's row order.
TABLE1_DATASETS = (
    "cosmo_small",
    "cosmo_medium",
    "cosmo_large",
    "plasma_large",
    "dayabay_large",
    "cosmo_thin",
    "plasma_thin",
    "dayabay_thin",
)


@dataclass
class Table1Row:
    """One row of the reproduced Table I."""

    name: str
    n_points: int
    dims: int
    k: int
    query_fraction: float
    n_ranks: int
    construction_time: float
    query_time: float
    paper_construction: float | None
    paper_query: float | None
    paper_particles: float
    paper_cores: int

    def as_list(self) -> List[object]:
        """Row cells in printing order."""
        return [
            self.name,
            self.n_points,
            self.dims,
            self.k,
            f"{self.query_fraction * 100:g}%",
            self.n_ranks,
            self.construction_time,
            self.query_time,
            self.paper_construction if self.paper_construction is not None else "-",
            self.paper_query if self.paper_query is not None else "-",
        ]


def run_table1(
    datasets: Sequence[str] = TABLE1_DATASETS,
    scale: float = 1.0,
    seed: int = 0,
) -> Dict[str, object]:
    """Reproduce Table I at reduced scale.

    Returns a dict with ``rows`` (list of :class:`Table1Row`) and ``text``
    (a formatted table mirroring the paper's columns).
    """
    rows: List[Table1Row] = []
    for name in datasets:
        spec = load_dataset(name)
        run = run_panda_on_dataset(name, scale=scale, seed=seed)
        rows.append(
            Table1Row(
                name=name,
                n_points=run.n_points,
                dims=spec.dims,
                k=run.k,
                query_fraction=spec.query_fraction,
                n_ranks=run.n_ranks,
                construction_time=run.construction_time,
                query_time=run.query_time,
                paper_construction=spec.paper.construction_seconds,
                paper_query=spec.paper.query_seconds,
                paper_particles=spec.paper.particles,
                paper_cores=spec.paper.cores,
            )
        )
    headers = [
        "Name",
        "Particles",
        "Dims",
        "k",
        "Queries(%)",
        "Ranks",
        "Time(C) model s",
        "Time(Q) model s",
        "Paper C s",
        "Paper Q s",
    ]
    text = format_table(headers, [r.as_list() for r in rows], title="Table I (reduced-scale reproduction)")
    return {"rows": rows, "text": text}
