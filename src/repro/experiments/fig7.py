"""Figure 7 reproduction: single-node comparison with FLANN and ANN.

The paper compares kd-tree construction ("training") and querying
("classification") against FLANN and ANN on the ``*_thin`` datasets:

* construction: PANDA is 2.2x / 2.6x faster than FLANN / ANN on one core and
  more than an order of magnitude (39x / 59x) faster on 24 cores, because
  neither library parallelises construction;
* querying: PANDA is up to 48x faster than FLANN and 3x faster than ANN on
  one core (FLANN traverses ~7x more nodes than ANN and ~2x more than PANDA
  on cosmo_thin; ANN's tree is much deeper), and up to 22x faster than FLANN
  on 24 threads.  ANN is not parallelised at all.

The reproduction builds all three trees with their respective split rules
(implemented on the shared kd-tree kernel), measures the *structural*
quantities the paper explains the gap with (tree depth, node traversals,
distance computations), and models wall-clock with two machine profiles:
PANDA with the vectorised node model, FLANN/ANN with a scalar
(non-SIMD) model reflecting the reference library implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.baselines.ann_like import AnnLikeKNN
from repro.baselines.flann_like import FlannLikeKNN
from repro.cluster.cost_model import CostModel
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import MetricsRegistry
from repro.datasets.registry import load_dataset
from repro.kdtree.build import build_kdtree
from repro.kdtree.query import QueryStats, batch_knn
from repro.kdtree.tree import KDTree, KDTreeConfig
from repro.perf.report import format_table

THIN_DATASETS = ("cosmo_thin", "plasma_thin", "dayabay_thin")


@dataclass
class LibraryResult:
    """Modeled times and structural statistics for one library on one dataset."""

    library: str
    construction_1t: float
    construction_24t: float | None
    query_1t: float
    query_24t: float | None
    tree_depth: int
    nodes_visited_per_query: float
    distance_computations_per_query: float


@dataclass
class Fig7Result:
    """Comparison results per dataset."""

    per_dataset: Dict[str, List[LibraryResult]]

    @property
    def text(self) -> str:
        """Formatted comparison tables (one per dataset)."""
        blocks = []
        for name, rows in self.per_dataset.items():
            table_rows = [
                [
                    r.library,
                    r.construction_1t,
                    r.construction_24t if r.construction_24t is not None else "-",
                    r.query_1t,
                    r.query_24t if r.query_24t is not None else "-",
                    r.tree_depth,
                    r.nodes_visited_per_query,
                ]
                for r in rows
            ]
            blocks.append(
                format_table(
                    ["library", "train 1t (s)", "train 24t (s)", "query 1t (s)", "query 24t (s)",
                     "depth", "nodes/query"],
                    table_rows,
                    title=f"Fig. 7 comparison — {name}",
                )
            )
        return "\n\n".join(blocks)

    def speedup_vs(self, dataset: str, other: str, phase: str = "query_1t") -> float:
        """PANDA speedup over ``other`` for the given phase on ``dataset``."""
        rows = {r.library: r for r in self.per_dataset[dataset]}
        panda = getattr(rows["panda"], phase)
        base = getattr(rows[other], phase)
        if panda <= 0:
            return float("inf")
        return base / panda


#: Per-node overhead (cycles worth of scalar work) charged to the reference
#: libraries for allocating and initialising pointer-based tree nodes.
REFERENCE_NODE_OVERHEAD_OPS = 220

#: Branch-misprediction penalty multiplier on the reference libraries'
#: traversal bookkeeping (the paper attributes part of PANDA's advantage to
#: "reduced branch misprediction and vectorization in binary search").
REFERENCE_BRANCH_PENALTY_OPS_PER_NODE = 24


def _reference_machine(machine: MachineSpec) -> MachineSpec:
    """Machine profile for the reference C++ libraries (FLANN / ANN).

    They run scalar distance loops (no explicit SIMD packing of leaves) and
    perform no software prefetching, so dependent node accesses pay the full
    memory latency with no SMT hiding.
    """
    return replace(
        machine,
        simd_width_doubles=1,
        memory_latency_s=machine.memory_latency_s * 2.0,
        smt_latency_hiding=0.0,
    )


def _model_times(
    tree: KDTree,
    qstats: QueryStats,
    machine: MachineSpec,
    threads_construction: int,
    threads_query: int,
    reference_profile: bool = False,
) -> tuple[float, float]:
    """Convert build + query counters into modeled seconds.

    When ``reference_profile`` is set the counters are augmented with the
    implementation characteristics of the reference libraries the paper
    describes: points (not just indices) are reorganised at every tree
    level, each tree node is individually allocated, and the traversal pays
    a branch-misprediction penalty.  These substitutions are documented in
    EXPERIMENTS.md; the structural quantities (depth, traversals, distance
    computations) are measured, not modeled.
    """
    registry = MetricsRegistry(1)
    for name, counters in tree.stats.phase_counters.items():
        with registry.phase(name):
            pass
        registry.rank(0).phase(name).merge(counters)
    if reference_profile:
        machine = _reference_machine(machine)
        build_counters = registry.rank(0).phase("reference_overheads")
        with registry.phase("reference_overheads"):
            pass
        depth = max(tree.depth(), 1)
        # Reorganise the full point array (read + write) at every level
        # instead of PANDA's index-only shuffle + single packing pass.
        build_counters.bytes_streamed += int(tree.points.nbytes) * 2 * depth
        build_counters.scalar_ops += tree.n_nodes * REFERENCE_NODE_OVERHEAD_OPS
        query_counters = registry.rank(0).phase("query")
        query_counters.scalar_ops += qstats.nodes_visited * REFERENCE_BRANCH_PENALTY_OPS_PER_NODE
    with registry.phase("query"):
        qstats.charge(registry.for_phase(0), tree.dims)
    model = CostModel(machine=machine, threads_per_rank=threads_construction)
    construction_phases = [p for p in registry.phase_order if p != "query"]
    construction = model.evaluate(registry, phases=construction_phases, threads=threads_construction).total_s
    query = model.evaluate(registry, phases=["query"], threads=threads_query).total_s
    return construction, query


def run_fig7(
    datasets: Sequence[str] = THIN_DATASETS,
    scale: float = 1.0,
    k: int = 5,
    seed: int = 0,
    machine: MachineSpec | None = None,
) -> Fig7Result:
    """Compare PANDA, FLANN-like and ANN-like trees on the thin datasets."""
    machine = machine or MachineSpec.edison()
    per_dataset: Dict[str, List[LibraryResult]] = {}
    for name in datasets:
        spec = load_dataset(name)
        n_points = max(2_000, int(round(spec.n_points * scale)))
        points = spec.points(seed=seed, n_points=n_points)
        queries = spec.queries(points, seed=seed)
        rows: List[LibraryResult] = []

        # PANDA local tree.
        panda_tree = build_kdtree(points, config=KDTreeConfig(), threads=machine.cores_per_node)
        _, _, panda_stats = batch_knn(panda_tree, queries, k)
        c1, q1 = _model_times(panda_tree, panda_stats, machine, 1, 1)
        c24, q24 = _model_times(panda_tree, panda_stats, machine, machine.cores_per_node,
                                machine.cores_per_node)
        rows.append(
            LibraryResult(
                library="panda",
                construction_1t=c1,
                construction_24t=c24,
                query_1t=q1,
                query_24t=q24,
                tree_depth=panda_tree.depth(),
                nodes_visited_per_query=panda_stats.nodes_visited / max(panda_stats.queries, 1),
                distance_computations_per_query=panda_stats.distance_computations / max(panda_stats.queries, 1),
            )
        )

        # FLANN-like: construction is sequential; queries parallelise over
        # the same outer loop the paper uses.
        flann = FlannLikeKNN().fit(points)
        _, _, flann_stats = flann.query(queries, k)
        fc1, fq1 = _model_times(flann.tree, flann_stats, machine, 1, 1, reference_profile=True)
        _, fq24 = _model_times(flann.tree, flann_stats, machine, 1, machine.cores_per_node,
                               reference_profile=True)
        rows.append(
            LibraryResult(
                library="flann",
                construction_1t=fc1,
                construction_24t=fc1,  # construction cannot run in parallel
                query_1t=fq1,
                query_24t=fq24,
                tree_depth=flann.depth,
                nodes_visited_per_query=flann_stats.nodes_visited / max(flann_stats.queries, 1),
                distance_computations_per_query=flann_stats.distance_computations / max(flann_stats.queries, 1),
            )
        )

        # ANN-like: sequential construction and sequential querying.
        ann = AnnLikeKNN().fit(points)
        _, _, ann_stats = ann.query(queries, k)
        ac1, aq1 = _model_times(ann.tree, ann_stats, machine, 1, 1, reference_profile=True)
        rows.append(
            LibraryResult(
                library="ann",
                construction_1t=ac1,
                construction_24t=None,
                query_1t=aq1,
                query_24t=None,
                tree_depth=ann.depth,
                nodes_visited_per_query=ann_stats.nodes_visited / max(ann_stats.queries, 1),
                distance_computations_per_query=ann_stats.distance_computations / max(ann_stats.queries, 1),
            )
        )
        per_dataset[name] = rows
    return Fig7Result(per_dataset=per_dataset)
