"""Configuration of the distributed PANDA index."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.kdtree.tree import KDTreeConfig


@dataclass(frozen=True)
class PandaConfig:
    """Parameters of distributed construction and querying.

    Attributes
    ----------
    local:
        Configuration of the per-rank local kd-tree (bucket size 32,
        variance split dimension, sampled-histogram median by default).
    global_samples_per_rank:
        Points each rank samples when estimating the global split point
        (m = 256 in the paper).
    global_variance_samples:
        Points each rank samples for the global split-dimension variance
        estimate.
    query_batch_size:
        Queries processed per batch in the distributed query engine; the
        paper batches queries "to ensure load balance among nodes and better
        throughput overall".
    k:
        Default number of neighbours returned by queries.
    binning:
        Histogram binning variant used by the global split ("subinterval"
        or "searchsorted").
    seed:
        Seed of the deterministic RNG used for all sampling.
    """

    local: KDTreeConfig = field(default_factory=KDTreeConfig)
    global_samples_per_rank: int = 256
    global_variance_samples: int = 1024
    query_batch_size: int = 4096
    k: int = 5
    binning: str = "subinterval"
    seed: int = 20160527

    def __post_init__(self) -> None:
        if self.global_samples_per_rank <= 0:
            raise ValueError(
                f"global_samples_per_rank must be positive, got {self.global_samples_per_rank}"
            )
        if self.global_variance_samples <= 0:
            raise ValueError(
                f"global_variance_samples must be positive, got {self.global_variance_samples}"
            )
        if self.query_batch_size <= 0:
            raise ValueError(f"query_batch_size must be positive, got {self.query_batch_size}")
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.binning not in ("subinterval", "searchsorted"):
            raise ValueError(f"unknown binning {self.binning!r}")

    def with_k(self, k: int) -> "PandaConfig":
        """Copy of this config with a different default ``k``."""
        return replace(self, k=k)

    def with_local(self, local: KDTreeConfig) -> "PandaConfig":
        """Copy of this config with a different local-tree configuration."""
        return replace(self, local=local)

    @staticmethod
    def paper_defaults() -> "PandaConfig":
        """The configuration described in Section III of the paper."""
        return PandaConfig()
