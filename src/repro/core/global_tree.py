"""The global kd-tree: spatial partitioning of the dataset across ranks.

The top ``log2(P)`` levels of PANDA's distributed kd-tree assign each rank a
non-overlapping axis-aligned region of the domain.  Every rank keeps a copy
of this (small) tree so that, during querying, it can

* find the *owner* rank of any query point (step 1 of the protocol), and
* identify which other ranks' regions intersect the ball of radius r'
  around a query (step 3), which bounds where remote neighbours can live.

Both lookups are vectorised over query batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

#: Sentinel marking a leaf of the global tree.
LEAF = -1


@dataclass
class GlobalTreeNode:
    """One node of the global kd-tree (used during construction only)."""

    split_dim: int = LEAF
    split_val: float = np.nan
    left: int = LEAF
    right: int = LEAF
    rank: int = LEAF


@dataclass
class GlobalTree:
    """Flattened global kd-tree shared (conceptually) by every rank.

    Attributes
    ----------
    split_dim, split_val, left, right, rank:
        Flat node arrays; ``rank`` is the owning rank at leaf nodes and -1
        elsewhere.
    box_lo, box_hi:
        ``(P, dims)`` per-rank domain bounding boxes (half-open in the tree
        sense; unbounded sides are +-inf).
    dims:
        Dimensionality of the domain.
    """

    split_dim: np.ndarray
    split_val: np.ndarray
    left: np.ndarray
    right: np.ndarray
    rank: np.ndarray
    box_lo: np.ndarray
    box_hi: np.ndarray
    dims: int
    depth_of_rank: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_nodes(nodes: List[GlobalTreeNode], n_ranks: int, dims: int) -> "GlobalTree":
        """Flatten a node list (root at index 0) into array form."""
        split_dim = np.array([n.split_dim for n in nodes], dtype=np.int32)
        split_val = np.array([n.split_val for n in nodes], dtype=np.float64)
        left = np.array([n.left for n in nodes], dtype=np.int32)
        right = np.array([n.right for n in nodes], dtype=np.int32)
        rank = np.array([n.rank for n in nodes], dtype=np.int32)

        box_lo = np.full((n_ranks, dims), -np.inf, dtype=np.float64)
        box_hi = np.full((n_ranks, dims), np.inf, dtype=np.float64)
        depth_of_rank = np.zeros(n_ranks, dtype=np.int64)
        # Walk the tree accumulating half-space constraints per rank region.
        stack: List[Tuple[int, np.ndarray, np.ndarray, int]] = [
            (0, np.full(dims, -np.inf), np.full(dims, np.inf), 0)
        ]
        while stack:
            node, lo, hi, depth = stack.pop()
            if split_dim[node] == LEAF:
                owner = int(rank[node])
                box_lo[owner] = lo
                box_hi[owner] = hi
                depth_of_rank[owner] = depth
                continue
            dim = int(split_dim[node])
            val = float(split_val[node])
            lo_left, hi_left = lo.copy(), hi.copy()
            hi_left[dim] = min(hi_left[dim], val)
            lo_right, hi_right = lo.copy(), hi.copy()
            lo_right[dim] = max(lo_right[dim], val)
            stack.append((int(left[node]), lo_left, hi_left, depth + 1))
            stack.append((int(right[node]), lo_right, hi_right, depth + 1))
        return GlobalTree(
            split_dim=split_dim,
            split_val=split_val,
            left=left,
            right=right,
            rank=rank,
            box_lo=box_lo,
            box_hi=box_hi,
            dims=dims,
            depth_of_rank=depth_of_rank,
        )

    @staticmethod
    def single_rank(dims: int) -> "GlobalTree":
        """Degenerate global tree for a single-rank cluster."""
        return GlobalTree.from_nodes([GlobalTreeNode(rank=0)], n_ranks=1, dims=dims)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of rank regions (leaves)."""
        return int(self.box_lo.shape[0])

    @property
    def n_nodes(self) -> int:
        """Total nodes in the global tree."""
        return int(self.split_dim.shape[0])

    def depth(self) -> int:
        """Maximum leaf depth (log2(P) for a power-of-two rank count)."""
        return int(self.depth_of_rank.max()) if self.depth_of_rank.size else 0

    def nbytes(self) -> int:
        """Memory footprint of the structure every rank replicates."""
        arrays = (self.split_dim, self.split_val, self.left, self.right, self.rank,
                  self.box_lo, self.box_hi)
        return int(sum(a.nbytes for a in arrays))

    # ------------------------------------------------------------------
    # Lookups (vectorised over query batches)
    # ------------------------------------------------------------------
    def owner_of(self, queries: np.ndarray) -> np.ndarray:
        """Rank owning the region containing each query point.

        ``queries`` is ``(n, dims)``; returns an ``(n,)`` int array.  Points
        exactly on a splitting plane go left, matching the construction's
        ``<=`` rule.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = queries.shape[0]
        nodes = np.zeros(n, dtype=np.int64)
        while True:
            dims = self.split_dim[nodes]
            active = dims != LEAF
            if not np.any(active):
                break
            idx = np.flatnonzero(active)
            active_nodes = nodes[idx]
            d = self.split_dim[active_nodes].astype(np.int64)
            vals = self.split_val[active_nodes]
            coords = queries[idx, d]
            go_left = coords <= vals
            nxt = np.where(go_left, self.left[active_nodes], self.right[active_nodes])
            nodes[idx] = nxt
        return self.rank[nodes].astype(np.int64)

    def box_distance_sq(self, query: np.ndarray) -> np.ndarray:
        """Squared distance from ``query`` to every rank's bounding box."""
        query = np.asarray(query, dtype=np.float64).ravel()
        below = np.clip(self.box_lo - query[None, :], 0.0, None)
        above = np.clip(query[None, :] - self.box_hi, 0.0, None)
        delta = np.where(below > 0.0, below, above)
        delta = np.where(np.isfinite(delta), delta, 0.0)
        return np.einsum("ij,ij->i", delta, delta)

    def ranks_within(self, query: np.ndarray, radius: float, exclude: int | None = None) -> np.ndarray:
        """Ranks whose region intersects the ball of ``radius`` around ``query``.

        This implements step 3 of the query protocol: only these ranks can
        possibly own a neighbour closer than the current r' bound.
        ``exclude`` removes the owner rank from the result.
        """
        if not np.isfinite(radius):
            ranks = np.arange(self.n_ranks, dtype=np.int64)
        else:
            dist_sq = self.box_distance_sq(query)
            ranks = np.flatnonzero(dist_sq <= radius * radius).astype(np.int64)
        if exclude is not None:
            ranks = ranks[ranks != exclude]
        return ranks

    def _ranks_within_mask(
        self, queries: np.ndarray, radii: np.ndarray, owners: np.ndarray
    ) -> np.ndarray:
        """``(n, P)`` boolean mask of ranks whose box intersects each query's
        r' ball, with the owner rank zeroed out (the shared core of
        :meth:`ranks_within_batch` and :meth:`ranks_within_flat`)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        radii = np.asarray(radii, dtype=np.float64).ravel()
        owners = np.asarray(owners, dtype=np.int64).ravel()
        n = queries.shape[0]
        if radii.shape[0] != n or owners.shape[0] != n:
            raise ValueError("queries, radii and owners must have matching lengths")
        # Distance from every query to every rank box: (n, P).
        below = np.clip(self.box_lo[None, :, :] - queries[:, None, :], 0.0, None)
        above = np.clip(queries[:, None, :] - self.box_hi[None, :, :], 0.0, None)
        delta = np.where(below > 0.0, below, above)
        delta = np.where(np.isfinite(delta), delta, 0.0)
        dist_sq = np.einsum("npd,npd->np", delta, delta)
        radius_sq = np.where(np.isfinite(radii), radii * radii, np.inf)
        mask = dist_sq <= radius_sq[:, None]
        mask[np.arange(n), owners] = False
        return mask

    def ranks_within_batch(
        self, queries: np.ndarray, radii: np.ndarray, owners: np.ndarray
    ) -> List[np.ndarray]:
        """Vectorised :meth:`ranks_within` for a batch of queries.

        Returns a list with, for every query, the ranks (owner excluded)
        whose box intersects its r' ball.  Infinite radii (owner found fewer
        than k local neighbours) intersect every rank.
        """
        mask = self._ranks_within_mask(queries, radii, owners)
        return [np.flatnonzero(mask[i]).astype(np.int64) for i in range(mask.shape[0])]

    def ranks_within_flat(
        self, queries: np.ndarray, radii: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(rows, ranks)`` form of :meth:`ranks_within_batch`.

        One ``np.nonzero`` over the whole mask instead of a Python loop:
        both arrays are row-major ordered (row ascending, rank ascending
        within a row), which lets callers group by rank with one stable
        argsort and no per-row Python work.
        """
        mask = self._ranks_within_mask(queries, radii, owners)
        rows, ranks = np.nonzero(mask)
        return rows.astype(np.int64), ranks.astype(np.int64)
