"""KNN classification and regression on top of the PANDA index.

The paper's science result (Section V-C) applies PANDA to the Daya Bay
dataset: each query record is labelled by a majority vote over its k nearest
neighbours, reaching 87 % accuracy against expert 3-class labels.  The paper
also anticipates "spatial weighting of the k-neighbors" as an extension;
both unweighted and distance-weighted votes are implemented here, along with
the analogous regressor.

Two front-ends are provided:

* :class:`KNNClassifier` / :class:`KNNRegressor` — distributed, backed by
  :class:`~repro.core.panda.PandaKNN`;
* :class:`LocalKNNClassifier` — single-node, backed by a local
  :class:`~repro.kdtree.tree.KDTree` (used for quick experiments and the
  FLANN/ANN comparison workloads).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.core.config import PandaConfig
from repro.core.panda import PandaKNN
from repro.kdtree.build import build_kdtree
from repro.kdtree.query import batch_knn
from repro.kdtree.tree import KDTreeConfig


def _vote(
    neighbor_labels: np.ndarray,
    distances: np.ndarray,
    n_classes: int,
    weighted: bool,
) -> np.ndarray:
    """Majority (or distance-weighted) vote per query row.

    ``neighbor_labels`` may contain -1 for missing neighbours; those entries
    are ignored.  Ties resolve to the smallest class id (deterministic).
    """
    n_queries, k = neighbor_labels.shape
    votes = np.zeros((n_queries, n_classes), dtype=np.float64)
    valid = neighbor_labels >= 0
    if weighted:
        with np.errstate(divide="ignore"):
            weights = 1.0 / np.maximum(distances, 1e-12)
        weights = np.where(np.isfinite(weights), weights, 0.0)
    else:
        weights = np.ones_like(distances)
    for qi in range(n_queries):
        labels = neighbor_labels[qi][valid[qi]]
        w = weights[qi][valid[qi]]
        if labels.size == 0:
            continue
        np.add.at(votes[qi], labels, w)
    return np.argmax(votes, axis=1)


class KNNClassifier:
    """Distributed k-nearest-neighbour classifier.

    Parameters
    ----------
    k:
        Neighbours consulted per prediction.
    n_ranks, machine, threads_per_rank, config:
        Forwarded to :class:`~repro.core.panda.PandaKNN`.
    weighted:
        When True, votes are weighted by inverse distance.
    """

    def __init__(
        self,
        k: int = 5,
        n_ranks: int = 4,
        machine: MachineSpec | None = None,
        threads_per_rank: int | None = None,
        config: PandaConfig | None = None,
        weighted: bool = False,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.weighted = weighted
        self.config = (config or PandaConfig()).with_k(k)
        self.index = PandaKNN(
            n_ranks=n_ranks, machine=machine, threads_per_rank=threads_per_rank, config=self.config
        )
        self._labels: np.ndarray | None = None
        self._n_classes = 0

    def fit(self, points: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        """Index the training points and remember their labels."""
        labels = np.asarray(labels, dtype=np.int64).ravel()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if labels.shape[0] != points.shape[0]:
            raise ValueError(
                f"labels length {labels.shape[0]} does not match points {points.shape[0]}"
            )
        if labels.size and labels.min() < 0:
            raise ValueError("labels must be non-negative integers")
        self._labels = labels
        self._n_classes = int(labels.max()) + 1 if labels.size else 0
        self.index.fit(points, ids=np.arange(points.shape[0], dtype=np.int64))
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predict a class label for every query row."""
        if self._labels is None:
            raise RuntimeError("classifier is not fitted; call fit(points, labels) first")
        report = self.index.query(queries, k=self.k)
        neighbor_labels = np.where(report.ids >= 0, self._labels[np.maximum(report.ids, 0)], -1)
        return _vote(neighbor_labels, report.distances, self._n_classes, self.weighted)

    def score(self, queries: np.ndarray, true_labels: np.ndarray) -> float:
        """Classification accuracy on ``queries``."""
        true_labels = np.asarray(true_labels, dtype=np.int64).ravel()
        predictions = self.predict(queries)
        if true_labels.shape[0] != predictions.shape[0]:
            raise ValueError("true_labels length does not match the number of queries")
        if predictions.size == 0:
            return 0.0
        return float(np.mean(predictions == true_labels))


class KNNRegressor:
    """Distributed k-nearest-neighbour regressor (mean or weighted mean)."""

    def __init__(
        self,
        k: int = 5,
        n_ranks: int = 4,
        machine: MachineSpec | None = None,
        threads_per_rank: int | None = None,
        config: PandaConfig | None = None,
        weighted: bool = False,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.weighted = weighted
        self.config = (config or PandaConfig()).with_k(k)
        self.index = PandaKNN(
            n_ranks=n_ranks, machine=machine, threads_per_rank=threads_per_rank, config=self.config
        )
        self._values: np.ndarray | None = None

    def fit(self, points: np.ndarray, values: np.ndarray) -> "KNNRegressor":
        """Index the training points and remember their target values."""
        values = np.asarray(values, dtype=np.float64).ravel()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if values.shape[0] != points.shape[0]:
            raise ValueError(
                f"values length {values.shape[0]} does not match points {points.shape[0]}"
            )
        self._values = values
        self.index.fit(points, ids=np.arange(points.shape[0], dtype=np.int64))
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predict a continuous value for every query row."""
        if self._values is None:
            raise RuntimeError("regressor is not fitted; call fit(points, values) first")
        report = self.index.query(queries, k=self.k)
        ids = report.ids
        dists = report.distances
        valid = ids >= 0
        neighbor_values = np.where(valid, self._values[np.maximum(ids, 0)], 0.0)
        if self.weighted:
            with np.errstate(divide="ignore"):
                weights = np.where(valid, 1.0 / np.maximum(dists, 1e-12), 0.0)
            weights = np.where(np.isfinite(weights), weights, 0.0)
        else:
            weights = valid.astype(np.float64)
        denom = np.maximum(weights.sum(axis=1), 1e-300)
        return (neighbor_values * weights).sum(axis=1) / denom


class LocalKNNClassifier:
    """Single-node KNN classifier backed by a local kd-tree."""

    def __init__(self, k: int = 5, config: KDTreeConfig | None = None, weighted: bool = False) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.weighted = weighted
        self.config = config or KDTreeConfig()
        self._tree = None
        self._labels: np.ndarray | None = None
        self._n_classes = 0

    def fit(self, points: np.ndarray, labels: np.ndarray) -> "LocalKNNClassifier":
        """Build the kd-tree over the training points."""
        labels = np.asarray(labels, dtype=np.int64).ravel()
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if labels.shape[0] != points.shape[0]:
            raise ValueError("labels length does not match points")
        self._labels = labels
        self._n_classes = int(labels.max()) + 1 if labels.size else 0
        self._tree = build_kdtree(points, config=self.config)
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predict labels for ``queries``."""
        if self._tree is None or self._labels is None:
            raise RuntimeError("classifier is not fitted; call fit(points, labels) first")
        dists, ids, _ = batch_knn(self._tree, queries, self.k)
        neighbor_labels = np.where(ids >= 0, self._labels[np.maximum(ids, 0)], -1)
        return _vote(neighbor_labels, dists, self._n_classes, self.weighted)

    def score(self, queries: np.ndarray, true_labels: np.ndarray) -> float:
        """Classification accuracy on ``queries``."""
        true_labels = np.asarray(true_labels, dtype=np.int64).ravel()
        predictions = self.predict(queries)
        if predictions.size == 0:
            return 0.0
        return float(np.mean(predictions == true_labels))


def train_test_split(
    points: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split (points, labels) into train/test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = rng or np.random.default_rng(0)
    points = np.atleast_2d(np.asarray(points))
    labels = np.asarray(labels).ravel()
    n = points.shape[0]
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return points[train_idx], labels[train_idx], points[test_idx], labels[test_idx]
