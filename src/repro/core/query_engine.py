"""The five-step distributed KNN query protocol (paper Section III-B).

For every batch of queries:

1. **Find owner** — the rank holding a query walks the (replicated) global
   kd-tree to find the rank owning the query's region and forwards the
   query there (all-to-all exchange).
2. **Local KNN** — the owner searches its local kd-tree; the distance to
   the k-th local neighbour becomes the pruning radius r'.
3. **Identify remote nodes** — the owner intersects the r' ball with the
   other ranks' domain boxes and forwards (query, r') only to those ranks.
4. **Remote KNN** — contacted ranks run a radius-bounded local search and
   return their candidates to the owner.
5. **Merge** — the owner merges local and remote candidates with a bounded
   heap and returns the final k neighbours to the rank that originally held
   the query.

Queries are processed in batches (``PandaConfig.query_batch_size``) which is
what enables the software pipelining / communication overlap the paper uses;
the cost model treats the query phases' communication as overlappable.
Every step charges its computation and traffic to a dedicated phase so the
Fig. 5(c) breakdown can be reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.executor import RankState, RankTask
from repro.cluster.simulator import Cluster
from repro.core.config import PandaConfig
from repro.core.global_tree import GlobalTree
from repro.core.local_phase import local_tree_of
from repro.kdtree.query import QueryStats, batch_knn

#: Phase names charged by the query engine (Fig. 5c categories).
PHASE_FIND_OWNER = "query_find_owner"
PHASE_LOCAL_KNN = "query_local_knn"
PHASE_IDENTIFY_REMOTE = "query_identify_remote"
PHASE_REMOTE_KNN = "query_remote_knn"
PHASE_MERGE = "query_merge"

QUERY_PHASES = (
    PHASE_FIND_OWNER,
    PHASE_LOCAL_KNN,
    PHASE_IDENTIFY_REMOTE,
    PHASE_REMOTE_KNN,
    PHASE_MERGE,
)


def _merge_reply_blocks(
    k: int,
    base_d: np.ndarray,
    base_i: np.ndarray,
    rows: np.ndarray,
    reply_d: np.ndarray,
    reply_i: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold remote reply blocks into the owner's per-query top-k (step 5).

    Vectorised equivalent of one ``merge_topk`` call per reply row: duplicate
    point ids keep their smaller distance (a remote rank may return a point
    the owner already found) and each query keeps its k closest candidates
    sorted by (distance, id).  ``rows`` maps each ``(k,)`` reply block to a
    row of ``base_d``/``base_i`` and may repeat when several remote ranks
    answered the same query; ``inf`` / ``-1`` padding is ignored.
    """
    nq = base_d.shape[0]
    n_rep = rows.shape[0]
    # Occurrence index of each reply block within its target row, so blocks
    # answering the same query land in disjoint column slices.
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    first_of_group = np.concatenate([[True], sorted_rows[1:] != sorted_rows[:-1]])
    group_start = np.flatnonzero(first_of_group)
    group_len = np.diff(np.append(group_start, n_rep))
    occ = np.empty(n_rep, dtype=np.int64)
    occ[order] = np.arange(n_rep) - np.repeat(group_start, group_len)

    wmax = int(group_len.max())
    cand_d = np.full((nq, wmax * k), np.inf, dtype=np.float64)
    cand_i = np.full((nq, wmax * k), -1, dtype=np.int64)
    cols = occ[:, None] * k + np.arange(k)[None, :]
    cand_d[rows[:, None], cols] = reply_d
    cand_i[rows[:, None], cols] = reply_i
    cand_d = np.where(cand_i >= 0, cand_d, np.inf)

    all_d = np.concatenate([np.where(base_i >= 0, base_d, np.inf), cand_d], axis=1)
    all_i = np.concatenate([base_i, cand_i], axis=1)
    width = all_d.shape[1]
    flat_d = all_d.ravel()
    flat_i = all_i.ravel()
    row_of = np.repeat(np.arange(nq), width)
    # Sort by (row, id, distance) and invalidate every copy of an id but its
    # closest, so duplicates resolve to the smaller distance.
    by_id = np.lexsort((flat_d, flat_i, row_of))
    si = flat_i[by_id]
    sr = row_of[by_id]
    dup = np.zeros(flat_i.size, dtype=bool)
    dup[1:] = (sr[1:] == sr[:-1]) & (si[1:] == si[:-1]) & (si[1:] >= 0)
    kill = by_id[dup]
    flat_d[kill] = np.inf
    flat_i[kill] = -1
    # Per-row top-k by (distance, id): the row index is the lexsort's major
    # key, so reshaping groups each row's sorted entries together.
    by_dist = np.lexsort((flat_i, flat_d, row_of)).reshape(nq, width)[:, :k]
    return flat_d[by_dist], flat_i[by_dist]


def _local_knn_step(
    state: RankState, queries: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray, QueryStats]:
    """Executor step 2: unbounded local KNN at the owner rank."""
    return batch_knn(state.tree, queries, k)


def _remote_knn_step(
    state: RankState, queries: np.ndarray, k: int, radii: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, QueryStats]:
    """Executor step 4: radius-bounded local KNN for forwarded queries."""
    return batch_knn(state.tree, queries, k, radii=radii)


def _merge_step(
    state: RankState,
    k: int,
    base_d: np.ndarray,
    base_i: np.ndarray,
    rows: np.ndarray,
    reply_d: np.ndarray,
    reply_i: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Executor step 5: fold remote reply blocks into the owner's top-k."""
    return _merge_reply_blocks(k, base_d, base_i, rows, reply_d, reply_i)


@dataclass
class QueryReport:
    """Results and statistics of a distributed query run."""

    k: int
    distances: np.ndarray
    ids: np.ndarray
    owners: np.ndarray
    remote_fanout: np.ndarray
    remote_neighbors_used: np.ndarray
    n_batches: int = 1
    local_stats: QueryStats = field(default_factory=QueryStats)
    remote_stats: QueryStats = field(default_factory=QueryStats)

    @property
    def n_queries(self) -> int:
        """Number of queries answered."""
        return int(self.distances.shape[0])

    @property
    def fraction_sent_remote(self) -> float:
        """Fraction of queries forwarded to at least one remote rank."""
        if self.n_queries == 0:
            return 0.0
        return float(np.count_nonzero(self.remote_fanout > 0)) / self.n_queries

    @property
    def mean_remote_fanout(self) -> float:
        """Average number of remote ranks contacted per query."""
        if self.n_queries == 0:
            return 0.0
        return float(self.remote_fanout.mean())

    @property
    def mean_remote_neighbors(self) -> float:
        """Average number of final neighbours supplied by remote ranks."""
        if self.n_queries == 0:
            return 0.0
        return float(self.remote_neighbors_used.mean())

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by reports and tests."""
        return {
            "n_queries": float(self.n_queries),
            "k": float(self.k),
            "fraction_sent_remote": self.fraction_sent_remote,
            "mean_remote_fanout": self.mean_remote_fanout,
            "mean_remote_neighbors": self.mean_remote_neighbors,
            "local_nodes_visited": float(self.local_stats.nodes_visited),
            "remote_nodes_visited": float(self.remote_stats.nodes_visited),
            "local_distance_computations": float(self.local_stats.distance_computations),
            "remote_distance_computations": float(self.remote_stats.distance_computations),
        }


class DistributedQueryEngine:
    """Executes the distributed query protocol over a prepared cluster.

    The cluster must already hold redistributed points and per-rank local
    trees (see :func:`repro.core.redistribution.build_global_tree` and
    :func:`repro.core.local_phase.build_local_trees`).
    """

    def __init__(self, cluster: Cluster, global_tree: GlobalTree, config: PandaConfig | None = None) -> None:
        self.cluster = cluster
        self.global_tree = global_tree
        self.config = config or PandaConfig()
        if global_tree.n_ranks != cluster.n_ranks:
            raise ValueError(
                f"global tree describes {global_tree.n_ranks} ranks but the cluster has {cluster.n_ranks}"
            )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        queries: np.ndarray,
        k: int | None = None,
        origin_ranks: np.ndarray | None = None,
    ) -> QueryReport:
        """Answer k-nearest-neighbour queries for every row of ``queries``.

        Parameters
        ----------
        queries:
            ``(n, dims)`` query coordinates.
        k:
            Neighbours per query (defaults to ``config.k``).
        origin_ranks:
            Rank initially holding each query (defaults to a block
            distribution over the cluster, mimicking queries being read from
            a partitioned file).

        Returns
        -------
        QueryReport
            Distances/ids in the original query order plus fan-out
            statistics.
        """
        k = self.config.k if k is None else k
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_queries = queries.shape[0]
        n_ranks = self.cluster.n_ranks
        if origin_ranks is None:
            boundaries = np.linspace(0, n_queries, n_ranks + 1).astype(np.int64)
            origin_ranks = np.empty(n_queries, dtype=np.int64)
            for r in range(n_ranks):
                origin_ranks[boundaries[r] : boundaries[r + 1]] = r
        else:
            origin_ranks = np.asarray(origin_ranks, dtype=np.int64)
            if origin_ranks.shape[0] != n_queries:
                raise ValueError("origin_ranks must have one entry per query")
            if origin_ranks.size and (origin_ranks.min() < 0 or origin_ranks.max() >= n_ranks):
                raise ValueError("origin_ranks contains an invalid rank id")

        out_d = np.full((n_queries, k), np.inf, dtype=np.float64)
        out_i = np.full((n_queries, k), -1, dtype=np.int64)
        owners_all = np.zeros(n_queries, dtype=np.int64)
        fanout_all = np.zeros(n_queries, dtype=np.int64)
        remote_used_all = np.zeros(n_queries, dtype=np.int64)
        local_stats = QueryStats()
        remote_stats = QueryStats()

        batch_size = self.config.query_batch_size
        n_batches = 0
        for lo in range(0, n_queries, batch_size):
            hi = min(lo + batch_size, n_queries)
            n_batches += 1
            self._run_batch(
                queries[lo:hi],
                np.arange(lo, hi, dtype=np.int64),
                origin_ranks[lo:hi],
                k,
                out_d,
                out_i,
                owners_all,
                fanout_all,
                remote_used_all,
                local_stats,
                remote_stats,
            )

        return QueryReport(
            k=k,
            distances=out_d,
            ids=out_i,
            owners=owners_all,
            remote_fanout=fanout_all,
            remote_neighbors_used=remote_used_all,
            n_batches=max(n_batches, 1),
            local_stats=local_stats,
            remote_stats=remote_stats,
        )

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        queries: np.ndarray,
        qids: np.ndarray,
        origin_ranks: np.ndarray,
        k: int,
        out_d: np.ndarray,
        out_i: np.ndarray,
        owners_all: np.ndarray,
        fanout_all: np.ndarray,
        remote_used_all: np.ndarray,
        local_stats: QueryStats,
        remote_stats: QueryStats,
    ) -> None:
        cluster = self.cluster
        comm = cluster.comm
        metrics = cluster.metrics
        n_ranks = cluster.n_ranks
        tree_depth = max(self.global_tree.depth(), 1)

        # ------------------------------------------------------------------
        # Step 1: find owners and route queries to them.
        # ------------------------------------------------------------------
        with metrics.phase(PHASE_FIND_OWNER):
            owners = self.global_tree.owner_of(queries)
            owners_all[qids] = owners
            for r in range(n_ranks):
                n_mine = int(np.count_nonzero(origin_ranks == r))
                counters = metrics.for_phase(r)
                counters.nodes_visited += n_mine * tree_depth
                counters.scalar_ops += n_mine
            send = [[None for _ in range(n_ranks)] for _ in range(n_ranks)]
            for src in range(n_ranks):
                src_mask = origin_ranks == src
                for dst in range(n_ranks):
                    sel = src_mask & (owners == dst)
                    if np.any(sel):
                        send[src][dst] = (queries[sel], qids[sel], np.full(int(sel.sum()), src, dtype=np.int64))
            recv = comm.alltoall(send)

        # Assemble the per-owner work lists.
        owner_queries: List[np.ndarray] = []
        owner_qids: List[np.ndarray] = []
        owner_origins: List[np.ndarray] = []
        for dst in range(n_ranks):
            pieces = [item for item in recv[dst] if item is not None]
            if pieces:
                owner_queries.append(np.concatenate([p[0] for p in pieces], axis=0))
                owner_qids.append(np.concatenate([p[1] for p in pieces]))
                owner_origins.append(np.concatenate([p[2] for p in pieces]))
            else:
                owner_queries.append(np.empty((0, queries.shape[1])))
                owner_qids.append(np.empty(0, dtype=np.int64))
                owner_origins.append(np.empty(0, dtype=np.int64))

        # ------------------------------------------------------------------
        # Step 2: local KNN at the owner; r' bounds from the k-th distance.
        # ------------------------------------------------------------------
        local_dists: List[np.ndarray] = []
        local_ids: List[np.ndarray] = []
        radii: List[np.ndarray] = []
        with metrics.phase(PHASE_LOCAL_KNN):
            tasks: List[RankTask | None] = [
                RankTask(r, _local_knn_step, (owner_queries[r], k), {"tree": local_tree_of(cluster, r)})
                if owner_queries[r].shape[0]
                else None
                for r in range(n_ranks)
            ]
            for r, out in enumerate(cluster.run_ranks(tasks)):
                if out is None:
                    local_dists.append(np.empty((0, k)))
                    local_ids.append(np.empty((0, k), dtype=np.int64))
                    radii.append(np.empty(0))
                    continue
                d, i, stats = out
                d_kth = d[:, k - 1]
                local_dists.append(d)
                local_ids.append(i)
                radii.append(np.where(np.isfinite(d_kth), d_kth, np.inf))
                stats.charge(metrics.for_phase(r), local_tree_of(cluster, r).dims)
                local_stats.merge(stats)

        # ------------------------------------------------------------------
        # Step 3: identify remote ranks within r' and forward the queries.
        # ------------------------------------------------------------------
        with metrics.phase(PHASE_IDENTIFY_REMOTE):
            send = [[None for _ in range(n_ranks)] for _ in range(n_ranks)]
            per_owner_remote: List[List[np.ndarray]] = []
            for r in range(n_ranks):
                nq = owner_queries[r].shape[0]
                counters = metrics.for_phase(r)
                if nq == 0:
                    per_owner_remote.append([])
                    continue
                remote_lists = self.global_tree.ranks_within_batch(owner_queries[r], radii[r], np.full(nq, r))
                per_owner_remote.append(remote_lists)
                counters.scalar_ops += nq * n_ranks
                fanouts = np.array([len(lst) for lst in remote_lists], dtype=np.int64)
                fanout_all[owner_qids[r]] = fanouts
                # Group the forwarded queries per destination rank.
                buckets: Dict[int, List[int]] = {}
                for qi, lst in enumerate(remote_lists):
                    for dst in lst:
                        buckets.setdefault(int(dst), []).append(qi)
                for dst, q_idx in buckets.items():
                    sel = np.asarray(q_idx, dtype=np.int64)
                    send[r][dst] = (
                        owner_queries[r][sel],
                        owner_qids[r][sel],
                        radii[r][sel],
                        np.full(sel.shape[0], r, dtype=np.int64),
                    )
            recv = comm.alltoall(send)

        # ------------------------------------------------------------------
        # Step 4: bounded local KNN for received remote queries; send back.
        # ------------------------------------------------------------------
        with metrics.phase(PHASE_REMOTE_KNN):
            reply = [[None for _ in range(n_ranks)] for _ in range(n_ranks)]
            incoming: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None] = []
            tasks = [None] * n_ranks
            for r in range(n_ranks):
                pieces = [item for item in recv[r] if item is not None]
                if not pieces:
                    incoming.append(None)
                    continue
                rq = np.concatenate([p[0] for p in pieces], axis=0)
                rqid = np.concatenate([p[1] for p in pieces])
                rrad = np.concatenate([p[2] for p in pieces])
                rowner = np.concatenate([p[3] for p in pieces])
                incoming.append((rq, rqid, rrad, rowner))
                tasks[r] = RankTask(
                    r, _remote_knn_step, (rq, k, rrad), {"tree": local_tree_of(cluster, r)}
                )
            for r, out in enumerate(cluster.run_ranks(tasks)):
                if out is None:
                    continue
                _, rqid, _, rowner = incoming[r]
                d, i, stats = out
                stats.charge(metrics.for_phase(r), local_tree_of(cluster, r).dims)
                remote_stats.merge(stats)
                for owner in np.unique(rowner):
                    sel = rowner == owner
                    reply[r][int(owner)] = (rqid[sel], d[sel], i[sel])
            replies = comm.alltoall(reply)

        # ------------------------------------------------------------------
        # Step 5: merge local and remote candidates; return to origin ranks.
        # ------------------------------------------------------------------
        with metrics.phase(PHASE_MERGE):
            result_send = [[None for _ in range(n_ranks)] for _ in range(n_ranks)]
            tasks = [None] * n_ranks
            for r in range(n_ranks):
                pieces = [piece for piece in replies[r] if piece is not None]
                if owner_queries[r].shape[0] == 0 or not pieces:
                    continue
                rqid = np.concatenate([p[0] for p in pieces])
                rd = np.concatenate([p[1] for p in pieces], axis=0)
                ri = np.concatenate([p[2] for p in pieces], axis=0)
                # Map each reply row to its query's position in this owner's
                # batch.
                sorter = np.argsort(owner_qids[r], kind="stable")
                rows = sorter[np.searchsorted(owner_qids[r], rqid, sorter=sorter)]
                tasks[r] = RankTask(r, _merge_step, (k, local_dists[r], local_ids[r], rows, rd, ri))
                metrics.for_phase(r).scalar_ops += int(rqid.shape[0]) * int(k * np.log2(max(k, 2)))
            merged_out = cluster.run_ranks(tasks)
            for r in range(n_ranks):
                nq = owner_queries[r].shape[0]
                if nq == 0:
                    continue
                metrics.for_phase(r)  # ensure the phase entry exists for active owners
                if merged_out[r] is not None:
                    merged_d, merged_i = merged_out[r]
                else:
                    merged_d = local_dists[r]
                    merged_i = local_ids[r]
                # Count neighbours that did not come from the owner itself.
                from_local = (merged_i[:, :, None] == local_ids[r][:, None, :]).any(axis=2)
                remote_used_all[owner_qids[r]] = np.count_nonzero(
                    (merged_i >= 0) & ~from_local, axis=1
                )
                # Return results to the rank that originally held the query.
                for origin in np.unique(owner_origins[r]):
                    sel = owner_origins[r] == origin
                    result_send[r][int(origin)] = (owner_qids[r][sel], merged_d[sel], merged_i[sel])
            results = comm.alltoall(result_send)
            for origin in range(n_ranks):
                for piece in results[origin]:
                    if piece is None:
                        continue
                    rqid, rd, ri = piece
                    out_d[rqid] = rd
                    out_i[rqid] = ri
