"""Snapshot persistence of a fitted distributed PANDA index.

A fitted :class:`~repro.core.panda.PandaKNN` is fully described by its
configuration, the cluster shape (rank count, modeled machine and thread
count), the global kd-tree arrays and one local kd-tree per rank — the
redistributed per-rank point sets are exactly the local trees' packed
points.  A snapshot is therefore a directory::

    snapshot/
        panda_meta.json        # version, config, cluster shape, machine
        global_tree.npz        # flat GlobalTree arrays
        local_tree_0000.npz    # per-rank KDTree snapshots (npz backend)
        local_tree_0001.npz
        ...

Restoring rebuilds the in-memory index without re-running construction:
local trees and the global tree load byte-identically, so a restored index
answers every query batch byte-identically to the original.  Construction
phase counters are *not* persisted — a restored index starts with fresh
metrics (query counters accumulate normally; the modeled construction time
of a warm start is zero, which is the point of warm-starting).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.cluster.machine import InterconnectSpec, MachineSpec
from repro.core.config import PandaConfig
from repro.core.global_tree import GlobalTree
from repro.core.local_phase import LOCAL_TREE_KEY
from repro.kdtree.serialize import (
    SNAPSHOT_VERSION,
    config_from_dict,
    config_to_dict,
    load_kdtree,
    save_kdtree,
)

_META_FILE = "panda_meta.json"
_GLOBAL_FILE = "global_tree.npz"

_GLOBAL_ARRAYS = ("split_dim", "split_val", "left", "right", "rank", "box_lo", "box_hi", "depth_of_rank")


def _local_tree_file(rank: int) -> str:
    return f"local_tree_{rank:04d}.npz"


# ----------------------------------------------------------------------
# Config / machine <-> JSON
# ----------------------------------------------------------------------
def panda_config_to_dict(config: PandaConfig) -> dict:
    """Plain-JSON representation of a :class:`PandaConfig`."""
    data = asdict(config)
    data["local"] = config_to_dict(config.local)
    return data


def panda_config_from_dict(data: dict) -> PandaConfig:
    """Inverse of :func:`panda_config_to_dict`."""
    data = dict(data)
    local = config_from_dict(data.pop("local"))
    return PandaConfig(local=local, **data)


def machine_to_dict(machine: MachineSpec) -> dict:
    """Plain-JSON representation of a :class:`MachineSpec`."""
    return asdict(machine)


def machine_from_dict(data: dict) -> MachineSpec:
    """Inverse of :func:`machine_to_dict`."""
    data = dict(data)
    interconnect = InterconnectSpec(**data.pop("interconnect"))
    return MachineSpec(interconnect=interconnect, **data)


# ----------------------------------------------------------------------
# GlobalTree <-> npz
# ----------------------------------------------------------------------
def save_global_tree(tree: GlobalTree, path: str | Path) -> None:
    """Write the flat global-tree arrays to an ``.npz`` file."""
    arrays = {name: getattr(tree, name) for name in _GLOBAL_ARRAYS}
    np.savez(Path(path), dims=np.int64(tree.dims), **arrays)


def load_global_tree(path: str | Path) -> GlobalTree:
    """Load a global tree written by :func:`save_global_tree`."""
    with np.load(Path(path)) as data:
        arrays = {name: data[name] for name in _GLOBAL_ARRAYS}
        dims = int(data["dims"])
    return GlobalTree(dims=dims, **arrays)


# ----------------------------------------------------------------------
# PandaKNN snapshot directory
# ----------------------------------------------------------------------
def write_snapshot(index, path: str | Path) -> Path:
    """Write a fitted :class:`~repro.core.panda.PandaKNN` to directory ``path``."""
    if not index.is_fitted:
        raise RuntimeError("cannot snapshot an unfitted index; call fit(points) first")
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": SNAPSHOT_VERSION,
        "n_ranks": index.n_ranks,
        "threads_per_rank": index.cluster.threads_per_rank,
        "machine": machine_to_dict(index.cluster.machine),
        "config": panda_config_to_dict(index.config),
    }
    (root / _META_FILE).write_text(json.dumps(meta, indent=2))
    save_global_tree(index.global_tree, root / _GLOBAL_FILE)
    for rank in index.cluster.ranks:
        save_kdtree(rank.store[LOCAL_TREE_KEY], root / _local_tree_file(rank.rank))
    return root


def read_snapshot(path: str | Path, machine: MachineSpec | None = None):
    """Restore a :class:`~repro.core.panda.PandaKNN` from a snapshot directory.

    ``machine`` overrides the persisted machine description (e.g. to model
    the same index on different hardware); the algorithmic state is loaded
    unchanged either way.
    """
    from repro.cluster.simulator import Cluster
    from repro.core.panda import PandaKNN
    from repro.core.query_engine import DistributedQueryEngine

    root = Path(path)
    meta_path = root / _META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"no PANDA snapshot at {root} (missing {_META_FILE})")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") != SNAPSHOT_VERSION:
        raise ValueError(
            f"snapshot {root} has version {meta.get('version')!r}; "
            f"this build reads version {SNAPSHOT_VERSION}"
        )

    index = PandaKNN.__new__(PandaKNN)
    index.config = panda_config_from_dict(meta["config"])
    index.cluster = Cluster(
        n_ranks=int(meta["n_ranks"]),
        machine=machine or machine_from_dict(meta["machine"]),
        threads_per_rank=int(meta["threads_per_rank"]),
    )
    index.global_tree = load_global_tree(root / _GLOBAL_FILE)
    for rank in index.cluster.ranks:
        tree = load_kdtree(root / _local_tree_file(rank.rank))
        rank.store[LOCAL_TREE_KEY] = tree
        # The redistributed per-rank point set is the local tree's packed
        # points (same set, leaf order); restore it for introspection
        # helpers like load_imbalance and gather_points.
        rank.set_points(tree.points, tree.ids)
    index._engine = DistributedQueryEngine(index.cluster, index.global_tree, index.config)
    index._fitted = True
    return index
