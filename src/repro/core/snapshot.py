"""Snapshot persistence of a fitted distributed PANDA index.

A fitted :class:`~repro.core.panda.PandaKNN` is fully described by its
configuration, the cluster shape (rank count, modeled machine and thread
count), the global kd-tree arrays and one local kd-tree per rank — the
redistributed per-rank point sets are exactly the local trees' packed
points.  A snapshot is therefore a directory::

    snapshot/
        panda_meta.json        # version, config, cluster shape, machine
        global_tree.npz        # flat GlobalTree arrays
        local_tree_0000.npz    # per-rank KDTree snapshots (npz backend)
        local_tree_0001.npz
        ...

Restoring rebuilds the in-memory index without re-running construction:
local trees and the global tree load byte-identically, so a restored index
answers every query batch byte-identically to the original.  Construction
phase counters are *not* persisted — a restored index starts with fresh
metrics (query counters accumulate normally; the modeled construction time
of a warm start is zero, which is the point of warm-starting).

Two layouts exist for the per-rank local trees:

* ``"files"`` (default, shown above) — one ``.npz`` per rank;
* ``"slabs"`` — every rank's tree packed into two shared
  :class:`~repro.io.column_store.ColumnStore` datasets (``local_points``
  for the row-aligned point data, ``local_nodes`` for the node-aligned
  structure arrays) with per-rank ``[start, end)`` bounds recorded in the
  meta file.  Each rank's tree is then a contiguous slab read through
  :meth:`~repro.io.column_store.ColumnStore.read_rank_slab`, which is what
  makes ``lazy=True`` restores cheap: a rank materialises only its own
  slab, on first touch.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import List, Tuple

import numpy as np

from repro.cluster.machine import InterconnectSpec, MachineSpec
from repro.core.config import PandaConfig
from repro.core.global_tree import GlobalTree
from repro.core.local_phase import LOCAL_TREE_KEY, LazyLocalTree, local_tree_of
from repro.kdtree.serialize import (
    config_from_dict,
    config_to_dict,
    load_kdtree,
    save_kdtree,
    stats_from_dict,
    stats_to_dict,
)
from repro.kdtree.tree import KDTree

_META_FILE = "panda_meta.json"
_GLOBAL_FILE = "global_tree.npz"
_POINTS_STORE = "local_points"
_NODES_STORE = "local_nodes"

#: Version written by ``layout="files"`` snapshots.  The *directory* layout
#: is what this number versions — per-rank tree files carry their own
#: :data:`repro.kdtree.serialize.SNAPSHOT_VERSION` inside, so kd-tree format
#: bumps do not move it.
FILES_SNAPSHOT_VERSION = 1

#: Version written by ``layout="slabs"`` snapshots.  Distinct from
#: :data:`FILES_SNAPSHOT_VERSION` so readers that predate the slab layout
#: reject it with the designed version error instead of crashing on missing
#: ``local_tree_NNNN.npz`` files.
SLAB_SNAPSHOT_VERSION = 2

_GLOBAL_ARRAYS = ("split_dim", "split_val", "left", "right", "rank", "box_lo", "box_hi", "depth_of_rank")

#: Node-aligned kd-tree arrays packed into the ``slabs`` nodes store.
_NODE_COLUMNS = ("split_dim", "split_val", "left", "right", "start", "count")


def _local_tree_file(rank: int) -> str:
    return f"local_tree_{rank:04d}.npz"


# ----------------------------------------------------------------------
# Config / machine <-> JSON
# ----------------------------------------------------------------------
def panda_config_to_dict(config: PandaConfig) -> dict:
    """Plain-JSON representation of a :class:`PandaConfig`."""
    data = asdict(config)
    data["local"] = config_to_dict(config.local)
    return data


def panda_config_from_dict(data: dict) -> PandaConfig:
    """Inverse of :func:`panda_config_to_dict`."""
    data = dict(data)
    local = config_from_dict(data.pop("local"))
    return PandaConfig(local=local, **data)


def machine_to_dict(machine: MachineSpec) -> dict:
    """Plain-JSON representation of a :class:`MachineSpec`."""
    return asdict(machine)


def machine_from_dict(data: dict) -> MachineSpec:
    """Inverse of :func:`machine_to_dict`."""
    data = dict(data)
    interconnect = InterconnectSpec(**data.pop("interconnect"))
    return MachineSpec(interconnect=interconnect, **data)


# ----------------------------------------------------------------------
# GlobalTree <-> npz
# ----------------------------------------------------------------------
def save_global_tree(tree: GlobalTree, path: str | Path) -> None:
    """Write the flat global-tree arrays to an ``.npz`` file."""
    arrays = {name: getattr(tree, name) for name in _GLOBAL_ARRAYS}
    np.savez(Path(path), dims=np.int64(tree.dims), **arrays)


def load_global_tree(path: str | Path) -> GlobalTree:
    """Load a global tree written by :func:`save_global_tree`."""
    with np.load(Path(path)) as data:
        arrays = {name: data[name] for name in _GLOBAL_ARRAYS}
        dims = int(data["dims"])
    return GlobalTree(dims=dims, **arrays)


# ----------------------------------------------------------------------
# PandaKNN snapshot directory
# ----------------------------------------------------------------------
def write_snapshot(index, path: str | Path, layout: str = "files") -> Path:
    """Write a fitted :class:`~repro.core.panda.PandaKNN` to directory ``path``.

    ``layout="files"`` stores one ``.npz`` per rank; ``layout="slabs"``
    packs every rank's tree into two shared column stores read slab-wise on
    restore (see module docstring).
    """
    if not index.is_fitted:
        raise RuntimeError("cannot snapshot an unfitted index; call fit(points) first")
    if layout not in ("files", "slabs"):
        raise ValueError(f"unknown snapshot layout {layout!r}; expected 'files' or 'slabs'")
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    meta = {
        "version": SLAB_SNAPSHOT_VERSION if layout == "slabs" else FILES_SNAPSHOT_VERSION,
        "layout": layout,
        "n_ranks": index.n_ranks,
        "threads_per_rank": index.cluster.threads_per_rank,
        "machine": machine_to_dict(index.cluster.machine),
        "config": panda_config_to_dict(index.config),
    }
    trees = [local_tree_of(index.cluster, rank.rank) for rank in index.cluster.ranks]
    if layout == "slabs":
        meta["ranks"] = _write_tree_slabs(trees, root)
    else:
        for rank, tree in zip(index.cluster.ranks, trees):
            save_kdtree(tree, root / _local_tree_file(rank.rank))
    (root / _META_FILE).write_text(json.dumps(meta, indent=2))
    save_global_tree(index.global_tree, root / _GLOBAL_FILE)
    return root


def _write_tree_slabs(trees, root: Path) -> list:
    """Pack per-rank trees into shared point/node column stores.

    Returns the per-rank meta entries (slab bounds, config, stats).
    """
    from repro.io.column_store import ColumnStore

    dims = max((t.points.shape[1] for t in trees), default=0)
    row_bounds = []
    node_bounds = []
    lo_rows = lo_nodes = 0
    for tree in trees:
        row_bounds.append((lo_rows, lo_rows + tree.n_points))
        node_bounds.append((lo_nodes, lo_nodes + tree.n_nodes))
        lo_rows += tree.n_points
        lo_nodes += tree.n_nodes
    point_cols = {
        f"dim{d}": np.concatenate([t.points[:, d] for t in trees] or [np.empty(0)])
        for d in range(dims)
    }
    point_cols["ids"] = np.concatenate([t.ids for t in trees] or [np.empty(0, dtype=np.int64)])
    ColumnStore(root / _POINTS_STORE).write(point_cols)
    ColumnStore(root / _NODES_STORE).write(
        {
            name: np.concatenate([getattr(t, name) for t in trees])
            for name in _NODE_COLUMNS
        }
    )
    return [
        {
            "rows": list(row_bounds[r]),
            "nodes": list(node_bounds[r]),
            "dims": int(trees[r].points.shape[1]),
            "config": config_to_dict(trees[r].config),
            "stats": stats_to_dict(trees[r].stats),
        }
        for r in range(len(trees))
    ]


def _slab_tree_loader(
    points_store, nodes_store, rank: int, n_ranks: int, meta: dict, row_bounds, node_bounds
):
    """Loader materialising rank ``rank``'s tree from the packed slabs.

    The stores and per-rank slab bounds are shared across all loaders,
    created once by the caller: the store caches its parsed manifest, so a
    restore over R ranks parses the two manifests once, not O(R) times.
    """
    entry = meta["ranks"][rank]

    def load() -> KDTree:
        dims = int(entry["dims"])
        n_rows = entry["rows"][1] - entry["rows"][0]
        if dims:
            points = points_store.read_rank_slab(
                [f"dim{d}" for d in range(dims)], rank, n_ranks, bounds=row_bounds
            )
        else:
            points = np.empty((n_rows, 0))
        # ids are read separately (column_stack would promote them to float).
        ids = points_store.read_column("ids", *row_bounds[rank]).astype(np.int64)
        node_arrays = {
            name: nodes_store.read_column(name, *node_bounds[rank]) for name in _NODE_COLUMNS
        }
        return KDTree(
            points=points,
            ids=ids,
            config=config_from_dict(entry["config"]),
            stats=stats_from_dict(entry["stats"]),
            **node_arrays,
        )

    return load


def read_snapshot(
    path: str | Path,
    machine: MachineSpec | None = None,
    lazy: bool = False,
    executor=None,
):
    """Restore a :class:`~repro.core.panda.PandaKNN` from a snapshot directory.

    ``machine`` overrides the persisted machine description (e.g. to model
    the same index on different hardware); the algorithmic state is loaded
    unchanged either way.  With ``lazy=True`` each rank's local tree is
    materialised on first touch instead of up front (see
    :meth:`repro.core.panda.PandaKNN.restore`).
    """
    from repro.cluster.simulator import Cluster
    from repro.core.panda import PandaKNN
    from repro.core.query_engine import DistributedQueryEngine

    root = Path(path)
    meta_path = root / _META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"no PANDA snapshot at {root} (missing {_META_FILE})")
    meta = json.loads(meta_path.read_text())
    if meta.get("version") not in (FILES_SNAPSHOT_VERSION, SLAB_SNAPSHOT_VERSION):
        raise ValueError(
            f"snapshot {root} has version {meta.get('version')!r}; "
            f"this build reads versions {FILES_SNAPSHOT_VERSION} and {SLAB_SNAPSHOT_VERSION}"
        )
    layout = meta.get("layout", "files")

    index = PandaKNN.__new__(PandaKNN)
    index.config = panda_config_from_dict(meta["config"])
    n_ranks = int(meta["n_ranks"])
    index.cluster = Cluster(
        n_ranks=n_ranks,
        machine=machine or machine_from_dict(meta["machine"]),
        threads_per_rank=int(meta["threads_per_rank"]),
        executor=executor,
    )
    index.global_tree = load_global_tree(root / _GLOBAL_FILE)
    if layout == "slabs":
        from repro.io.column_store import ColumnStore

        row_bounds = [tuple(e["rows"]) for e in meta["ranks"]]
        node_bounds = [tuple(e["nodes"]) for e in meta["ranks"]]
        points_store = ColumnStore(root / _POINTS_STORE)
        nodes_store = ColumnStore(root / _NODES_STORE)
    for rank in index.cluster.ranks:
        if layout == "slabs":
            loader = _slab_tree_loader(
                points_store, nodes_store, rank.rank, n_ranks, meta, row_bounds, node_bounds
            )
        else:
            loader = _file_tree_loader(root, rank.rank)
        rank.store[LOCAL_TREE_KEY] = LazyLocalTree(loader)
        if not lazy:
            # Materialising also restores the rank's point set (the
            # redistributed points are exactly the tree's packed points) for
            # introspection helpers like load_imbalance and gather_points.
            local_tree_of(index.cluster, rank.rank)
    index._engine = DistributedQueryEngine(index.cluster, index.global_tree, index.config)
    index._fitted = True
    return index


def _file_tree_loader(root: Path, rank: int):
    """Loader materialising rank ``rank``'s tree from its ``.npz`` file."""

    def load() -> KDTree:
        return load_kdtree(root / _local_tree_file(rank))

    return load


# ----------------------------------------------------------------------
# Versioned snapshot directories (background rebuild hot-swap)
# ----------------------------------------------------------------------
#: File naming the currently promoted version inside a versioned root.
CURRENT_POINTER = "CURRENT"

_VERSION_PREFIX = "v"
_VERSION_DIGITS = 4


def list_snapshot_versions(root: str | Path) -> List[Tuple[int, Path]]:
    """Every ``vNNNN`` version directory under ``root``, ascending.

    Returns ``(version_number, path)`` pairs; a missing or empty root yields
    an empty list.  Non-version entries (including the ``CURRENT`` pointer)
    are ignored.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    versions: List[Tuple[int, Path]] = []
    for entry in root.iterdir():
        name = entry.name
        if entry.is_dir() and name.startswith(_VERSION_PREFIX) and name[1:].isdigit():
            versions.append((int(name[1:]), entry))
    return sorted(versions)


def allocate_version_dir(root: str | Path) -> Path:
    """Create and return the next ``vNNNN`` directory under ``root``.

    Version numbers grow one past the largest version currently on disk, so
    a *promoted* version is never shadowed by a later build of the same
    name while it exists.  A build that was cancelled before promotion (its
    directory removed, never pointed at by ``CURRENT``, never observable
    through :func:`current_version_dir`) may have its number reused.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    versions = list_snapshot_versions(root)
    next_version = versions[-1][0] + 1 if versions else 1
    path = root / f"{_VERSION_PREFIX}{next_version:0{_VERSION_DIGITS}d}"
    path.mkdir()
    return path


def promote_version(root: str | Path, version_dir: str | Path) -> Path:
    """Atomically point ``root/CURRENT`` at ``version_dir``.

    The pointer is written to a temporary file and renamed over the old one
    (atomic on POSIX), so a reader never observes a half-written pointer:
    it sees either the previous version or the new one — the on-disk
    equivalent of the in-memory hot swap.
    """
    root = Path(root)
    version_dir = Path(version_dir)
    if version_dir.parent != root:
        raise ValueError(f"{version_dir} is not a version directory under {root}")
    if not version_dir.is_dir():
        raise FileNotFoundError(f"version directory {version_dir} does not exist")
    tmp = root / f".{CURRENT_POINTER}.tmp"
    tmp.write_text(version_dir.name + "\n")
    tmp.replace(root / CURRENT_POINTER)
    return version_dir


def current_version_dir(root: str | Path) -> Path | None:
    """The promoted version directory, or ``None`` when nothing is promoted."""
    root = Path(root)
    pointer = root / CURRENT_POINTER
    if not pointer.exists():
        return None
    name = pointer.read_text().strip()
    path = root / name
    if not path.is_dir():
        raise FileNotFoundError(f"{pointer} points at missing version {name!r}")
    return path
