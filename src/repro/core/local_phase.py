"""Per-rank local kd-tree construction (paper steps ii-iv).

After redistribution every rank owns the points of its region; this module
builds each rank's local kd-tree and charges the work of the three local
phases (data-parallel levels, thread-parallel subtrees, SIMD packing) to the
cluster metrics so the Fig. 5(b) breakdown includes them.
"""

from __future__ import annotations

from typing import List

from repro.cluster.simulator import Cluster
from repro.core.config import PandaConfig
from repro.kdtree.build import (
    PHASE_DATA_PARALLEL,
    PHASE_SIMD_PACKING,
    PHASE_THREAD_PARALLEL,
    build_kdtree,
)
from repro.kdtree.tree import KDTree

#: Key under which each rank stores its local tree.
LOCAL_TREE_KEY = "local_tree"

#: Local construction phases in Fig. 5(b) order.
LOCAL_PHASES = (PHASE_DATA_PARALLEL, PHASE_THREAD_PARALLEL, PHASE_SIMD_PACKING)


def build_local_trees(cluster: Cluster, config: PandaConfig | None = None) -> List[KDTree]:
    """Build a local kd-tree on every rank of ``cluster``.

    The trees are stored in ``rank.store["local_tree"]`` and returned in
    rank order.  Build counters are charged to the per-rank metrics under
    the phases ``local_data_parallel``, ``local_thread_parallel`` and
    ``local_simd_packing``.
    """
    config = config or PandaConfig()
    # Register the phases once, in paper order, before any rank charges them.
    for phase_name in LOCAL_PHASES:
        with cluster.metrics.phase(phase_name):
            pass
    trees: List[KDTree] = []
    for rank in cluster.ranks:
        tree = build_kdtree(
            rank.points,
            ids=rank.ids,
            config=config.local,
            threads=cluster.threads_per_rank,
        )
        rank.store[LOCAL_TREE_KEY] = tree
        trees.append(tree)
        # The builder registers all three phases unconditionally (even for
        # an empty rank), so the merge never silently skips one.
        for phase_name in LOCAL_PHASES:
            cluster.metrics.rank(rank.rank).phase(phase_name).merge(
                tree.stats.phase_counters[phase_name]
            )
    return trees


def local_tree_of(cluster: Cluster, rank: int) -> KDTree:
    """Return the local tree previously built on ``rank``."""
    store = cluster.ranks[rank].store
    if LOCAL_TREE_KEY not in store:
        raise KeyError(f"rank {rank} has no local kd-tree; call build_local_trees first")
    return store[LOCAL_TREE_KEY]
