"""Per-rank local kd-tree construction (paper steps ii-iv).

After redistribution every rank owns the points of its region; this module
builds each rank's local kd-tree and charges the work of the three local
phases (data-parallel levels, thread-parallel subtrees, SIMD packing) to the
cluster metrics so the Fig. 5(b) breakdown includes them.  The per-rank
builds are dispatched through the cluster's
:class:`~repro.cluster.executor.RankExecutor`, so they run sequentially,
across threads or across worker processes without changing results.
"""

from __future__ import annotations

from typing import Callable, List

from repro.cluster.executor import RankState, RankTask
from repro.cluster.simulator import Cluster
from repro.core.config import PandaConfig
from repro.kdtree.build import (
    PHASE_DATA_PARALLEL,
    PHASE_SIMD_PACKING,
    PHASE_THREAD_PARALLEL,
    build_kdtree,
)
from repro.kdtree.tree import KDTree, KDTreeConfig

#: Key under which each rank stores its local tree.
LOCAL_TREE_KEY = "local_tree"

#: Local construction phases in Fig. 5(b) order.
LOCAL_PHASES = (PHASE_DATA_PARALLEL, PHASE_THREAD_PARALLEL, PHASE_SIMD_PACKING)


class LazyLocalTree:
    """Deferred local tree: loads on first touch (see ``PandaKNN.restore``).

    Holds a zero-argument loader returning the :class:`KDTree`;
    :func:`local_tree_of` swaps the handle for the materialised tree and
    restores the owning rank's point set from the tree's packed points.
    """

    __slots__ = ("_loader",)

    def __init__(self, loader: Callable[[], KDTree]) -> None:
        self._loader = loader

    def load(self) -> KDTree:
        """Materialise the tree."""
        return self._loader()


def _build_tree_step(state: RankState, config: KDTreeConfig, threads: int) -> KDTree:
    """Executor step: build one rank's local tree from its points."""
    return build_kdtree(state.points, ids=state.ids, config=config, threads=threads)


def build_local_trees(cluster: Cluster, config: PandaConfig | None = None) -> List[KDTree]:
    """Build a local kd-tree on every rank of ``cluster``.

    The trees are stored in ``rank.store["local_tree"]`` and returned in
    rank order.  Build counters are charged to the per-rank metrics under
    the phases ``local_data_parallel``, ``local_thread_parallel`` and
    ``local_simd_packing``.
    """
    config = config or PandaConfig()
    # Register the phases once, in paper order, before any rank charges them.
    for phase_name in LOCAL_PHASES:
        with cluster.metrics.phase(phase_name):
            pass
    tasks = [
        RankTask(
            rank=rank.rank,
            step=_build_tree_step,
            args=(config.local, cluster.threads_per_rank),
            state={"points": rank.points, "ids": rank.ids},
        )
        for rank in cluster.ranks
    ]
    trees: List[KDTree] = cluster.run_ranks(tasks)
    for rank, tree in zip(cluster.ranks, trees):
        rank.store[LOCAL_TREE_KEY] = tree
        # The builder registers all three phases unconditionally (even for
        # an empty rank), so the merge never silently skips one.
        for phase_name in LOCAL_PHASES:
            cluster.metrics.rank(rank.rank).phase(phase_name).merge(
                tree.stats.phase_counters[phase_name]
            )
    return trees


def local_tree_of(cluster: Cluster, rank: int) -> KDTree:
    """Return the local tree previously built (or lazily restored) on ``rank``.

    A :class:`LazyLocalTree` handle left by a lazy snapshot restore is
    materialised here on first touch: the loaded tree replaces the handle
    and the rank's point set is restored from the tree's packed points.
    """
    store = cluster.ranks[rank].store
    if LOCAL_TREE_KEY not in store:
        raise KeyError(f"rank {rank} has no local kd-tree; call build_local_trees first")
    tree = store[LOCAL_TREE_KEY]
    if isinstance(tree, LazyLocalTree):
        tree = tree.load()
        store[LOCAL_TREE_KEY] = tree
        cluster.ranks[rank].set_points(tree.points, tree.ids)
    return tree
