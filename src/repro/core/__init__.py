"""PANDA: distributed kd-tree construction and distributed KNN querying.

This package implements the paper's primary contribution on top of the
simulated cluster substrate (:mod:`repro.cluster`) and the single-node
kd-tree kernels (:mod:`repro.kdtree`):

* :mod:`~repro.core.global_tree` — the global kd-tree partitioning the
  domain across ranks, with per-rank bounding boxes, vectorised owner
  lookup and r'-ball rank intersection;
* :mod:`~repro.core.redistribution` — distributed construction of the
  global tree: sampled-variance split dimension, sampled-histogram split
  point, and the all-to-all point exchange;
* :mod:`~repro.core.local_phase` — per-rank local tree construction with
  the paper's data-parallel / thread-parallel / SIMD-packing phases;
* :mod:`~repro.core.query_engine` — the five-step distributed query
  protocol with query batching and modeled communication overlap;
* :mod:`~repro.core.panda` — the :class:`~repro.core.panda.PandaKNN`
  façade (distributed mode and the replicated-tree mode used in Fig. 8b);
* :mod:`~repro.core.classification` — KNN classification / regression on
  top of either a local tree or a distributed PANDA index;
* :mod:`~repro.core.breakdown` — mapping of recorded phases onto the
  paper's Fig. 5(b)/(c) categories.
"""

from repro.core.config import PandaConfig
from repro.core.global_tree import GlobalTree
from repro.core.redistribution import build_global_tree
from repro.core.local_phase import build_local_trees
from repro.core.query_engine import DistributedQueryEngine, QueryReport
from repro.core.panda import PandaKNN, ReplicatedKNN
from repro.core.classification import KNNClassifier, KNNRegressor, LocalKNNClassifier
from repro.core.breakdown import (
    CONSTRUCTION_PHASES,
    QUERY_PHASES,
    construction_breakdown,
    query_breakdown,
)

__all__ = [
    "PandaConfig",
    "GlobalTree",
    "build_global_tree",
    "build_local_trees",
    "DistributedQueryEngine",
    "QueryReport",
    "PandaKNN",
    "ReplicatedKNN",
    "KNNClassifier",
    "KNNRegressor",
    "LocalKNNClassifier",
    "CONSTRUCTION_PHASES",
    "QUERY_PHASES",
    "construction_breakdown",
    "query_breakdown",
]
