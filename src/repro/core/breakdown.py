"""Mapping of recorded phases onto the paper's Fig. 5(b)/(c) categories.

The metrics registry records fine-grained phases; the paper reports two
stacked-percentage charts:

* Fig. 5(b): construction — global kd-tree construction, particle
  redistribution, local kd-tree (data parallel), local kd-tree (thread
  parallel), local kd-tree (SIMD packing);
* Fig. 5(c): querying — find owner, local KNN, identify remote nodes,
  remote KNN, non-overlapped communication.

These helpers evaluate the cost model per phase and fold the results into
exactly those categories.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.cluster.cost_model import CostModel
from repro.cluster.machine import MachineSpec
from repro.cluster.simulator import Cluster
from repro.core.query_engine import (
    PHASE_FIND_OWNER,
    PHASE_IDENTIFY_REMOTE,
    PHASE_LOCAL_KNN,
    PHASE_MERGE,
    PHASE_REMOTE_KNN,
    QUERY_PHASES,
)
from repro.core.redistribution import PHASE_GLOBAL_TREE, PHASE_REDISTRIBUTE
from repro.kdtree.build import PHASE_DATA_PARALLEL, PHASE_SIMD_PACKING, PHASE_THREAD_PARALLEL

#: Construction phases in Fig. 5(b) order.
CONSTRUCTION_PHASES = (
    PHASE_GLOBAL_TREE,
    PHASE_REDISTRIBUTE,
    PHASE_DATA_PARALLEL,
    PHASE_THREAD_PARALLEL,
    PHASE_SIMD_PACKING,
)

#: Human-readable labels matching the paper's legend.
CONSTRUCTION_LABELS = {
    PHASE_GLOBAL_TREE: "Global kd-tree construction",
    PHASE_REDISTRIBUTE: "Redistribute particles",
    PHASE_DATA_PARALLEL: "Local kd-tree (data parallel)",
    PHASE_THREAD_PARALLEL: "Local kd-tree (thread parallel)",
    PHASE_SIMD_PACKING: "Local kd-tree (SIMD packing)",
}

QUERY_LABELS = {
    PHASE_FIND_OWNER: "Find owner",
    PHASE_LOCAL_KNN: "Local KNN",
    PHASE_IDENTIFY_REMOTE: "Identify remote nodes",
    PHASE_REMOTE_KNN: "Remote KNN",
    PHASE_MERGE: "Merge results",
}

NON_OVERLAPPED_COMM_LABEL = "Non-overlapped communication"


def default_cost_model(cluster: Cluster, machine: MachineSpec | None = None) -> CostModel:
    """Cost model with the query phases marked as pipelined/overlapped."""
    machine = machine or cluster.machine
    return CostModel(
        machine=machine,
        threads_per_rank=cluster.threads_per_rank,
        overlap_phases=QUERY_PHASES,
    )


def construction_breakdown(
    cluster: Cluster,
    cost_model: CostModel | None = None,
    as_fractions: bool = True,
) -> Dict[str, float]:
    """Fig. 5(b): time per construction category (fractions by default)."""
    cost_model = cost_model or default_cost_model(cluster)
    breakdown = cost_model.evaluate(cluster.metrics, phases=list(CONSTRUCTION_PHASES))
    values = {CONSTRUCTION_LABELS[p.phase]: p.total_s for p in breakdown.phases}
    if not as_fractions:
        return values
    total = sum(values.values())
    if total <= 0.0:
        return {label: 0.0 for label in values}
    return {label: v / total for label, v in values.items()}


def query_breakdown(
    cluster: Cluster,
    cost_model: CostModel | None = None,
    as_fractions: bool = True,
) -> Dict[str, float]:
    """Fig. 5(c): time per query category, communication reported separately.

    Computation of each protocol step is reported under its own label; the
    communication of all query phases is pipelined with computation, and only
    the *non-overlapped* remainder is reported (as in the paper).
    """
    cost_model = cost_model or default_cost_model(cluster)
    breakdown = cost_model.evaluate(cluster.metrics, phases=list(QUERY_PHASES))
    values: Dict[str, float] = {}
    non_overlapped = 0.0
    for phase_time in breakdown.phases:
        values[QUERY_LABELS[phase_time.phase]] = phase_time.compute_s
        non_overlapped += phase_time.nonoverlapped_comm_s
    values[NON_OVERLAPPED_COMM_LABEL] = non_overlapped
    if not as_fractions:
        return values
    total = sum(values.values())
    if total <= 0.0:
        return {label: 0.0 for label in values}
    return {label: v / total for label, v in values.items()}


def phase_times(
    cluster: Cluster,
    phases: Sequence[str],
    cost_model: CostModel | None = None,
) -> Dict[str, float]:
    """Modeled total seconds of each phase in ``phases``."""
    cost_model = cost_model or default_cost_model(cluster)
    breakdown = cost_model.evaluate(cluster.metrics, phases=list(phases))
    return {p.phase: p.total_s for p in breakdown.phases}
