"""Distributed global kd-tree construction and point redistribution.

This module implements steps (i) of the paper's construction pipeline: the
cluster-wide recursive halving that produces the global kd-tree and moves
every point to the rank owning its region.

At every level, for every group of ranks:

1. the split *dimension* is the one with maximum variance, estimated from a
   per-rank sample combined with an allreduce of (count, sum, sum-of-squares);
2. the split *value* is the approximate median: every rank contributes
   ``m = 256`` sampled coordinates (allgather), all ranks histogram their
   local coordinates into the non-uniform bins those samples induce, the
   histograms are summed with an allreduce, and the interval point whose
   cumulative share is closest to the target fraction is selected;
3. every rank partitions its points into the two half-spaces and the halves
   are exchanged with an all-to-all so the first half of the group's ranks
   own the "left" region and the second half the "right" region.

The recursion stops when every group contains a single rank; that rank then
owns a non-overlapping axis-aligned region of the domain.  All communication
is charged to the ``global_tree`` phase and all point movement to the
``redistribute`` phase so the Fig. 5(b) breakdown can be reproduced.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.comm import Communicator
from repro.cluster.executor import RankState, RankTask
from repro.cluster.simulator import Cluster
from repro.core.config import PandaConfig
from repro.core.global_tree import LEAF, GlobalTree, GlobalTreeNode
from repro.kdtree.median import HistogramMedianEstimator, sample_interval_points, select_median_interval

#: Phase names charged by this module.
PHASE_GLOBAL_TREE = "global_tree"
PHASE_REDISTRIBUTE = "redistribute"


def _moments_step(state: RankState, sample_idx: np.ndarray | None) -> Tuple[np.ndarray, int]:
    """Executor step: (count, sum, sum-of-squares) row over (sampled) points."""
    pts = state.points if sample_idx is None else state.points[sample_idx]
    row = np.concatenate([[pts.shape[0]], pts.sum(axis=0), (pts * pts).sum(axis=0)])
    return row, int(pts.size)


def _histogram_step(
    state: RankState, dim: int, interval_points: np.ndarray, n_samples: int, binning: str
) -> Tuple[np.ndarray, int]:
    """Executor step: histogram the local ``dim`` column into shared bins."""
    estimator = HistogramMedianEstimator(n_samples=n_samples, binning=binning)
    values = state.points[:, dim] if state.points.shape[0] else np.empty(0)
    return estimator.histogram(values, interval_points)


def _partition_mask_step(state: RankState, dim: int, value: float) -> np.ndarray:
    """Executor step: boolean left-of-split mask of the local points."""
    return state.points[:, dim] <= value


def _group_split_dimension(
    cluster: Cluster,
    comm: Communicator,
    config: PandaConfig,
    rng: np.random.Generator,
) -> int:
    """Choose the max-variance dimension across the ranks of ``comm``.

    The per-rank sample indices are drawn from the shared ``rng`` in group
    order (so every executor sees identical draws); the moment reductions
    themselves run through the executor.
    """
    moments: List[np.ndarray | None] = [None] * comm.size
    tasks: List[RankTask | None] = [None] * comm.size
    for local, global_rank in enumerate(comm.group):
        rank = cluster.ranks[global_rank]
        sample_idx = None
        if rank.points.shape[0] > config.global_variance_samples:
            sample_idx = rng.choice(
                rank.points.shape[0], size=config.global_variance_samples, replace=False
            )
        if rank.points.size == 0:
            cluster.metrics.for_phase(global_rank).scalar_ops += 0
            dims = cluster.ranks[comm.group[0]].points.shape[1]
            moments[local] = np.zeros(2 * dims + 1)
            continue
        tasks[local] = RankTask(
            global_rank, _moments_step, (sample_idx,), {"points": rank.points}
        )
    for local, out in enumerate(cluster.run_ranks(tasks)):
        if out is None:
            continue
        row, ops = out
        cluster.metrics.for_phase(comm.group[local]).scalar_ops += ops
        moments[local] = row
    reduced = comm.allreduce_sum(moments)[0]
    dims = (reduced.shape[0] - 1) // 2
    count = max(reduced[0], 1.0)
    mean = reduced[1 : 1 + dims] / count
    second = reduced[1 + dims :] / count
    variance = np.maximum(second - mean * mean, 0.0)
    return int(np.argmax(variance))


def _group_split_value(
    cluster: Cluster,
    comm: Communicator,
    dim: int,
    target: float,
    config: PandaConfig,
    rng: np.random.Generator,
) -> float:
    """Approximate the ``target`` quantile along ``dim`` across the group."""
    # Every rank contributes m sampled coordinates; allgather makes the
    # combined interval points available everywhere.
    samples = []
    for global_rank in comm.group:
        values = cluster.ranks[global_rank].points[:, dim] if cluster.ranks[global_rank].n_points else np.empty(0)
        samples.append(sample_interval_points(values, config.global_samples_per_rank, rng))
    gathered = comm.allgather(samples)[0]
    interval_points = np.unique(np.concatenate([s for s in gathered if s.size] or [np.empty(0)]))
    if interval_points.size == 0:
        return 0.0

    # Every rank histograms its own points into the shared bins.
    tasks = [
        RankTask(
            global_rank,
            _histogram_step,
            (dim, interval_points, config.global_samples_per_rank, config.binning),
            {"points": cluster.ranks[global_rank].points},
        )
        for global_rank in comm.group
    ]
    histograms = []
    for local, (counts, ops) in enumerate(cluster.run_ranks(tasks)):
        cluster.metrics.for_phase(comm.group[local]).histogram_ops += ops
        histograms.append(counts)
    total_counts = comm.allreduce_sum(histograms)[0]
    return select_median_interval(interval_points, total_counts, target=target)


def _exchange_partitions(
    cluster: Cluster,
    comm: Communicator,
    dim: int,
    split_val: float,
    left_ranks: Sequence[int],
    right_ranks: Sequence[int],
    target: float,
) -> float:
    """Partition each rank's points around ``split_val`` and exchange halves.

    After this call the ranks in ``left_ranks`` hold only points with
    coordinate ``<= split_val`` along ``dim`` and ``right_ranks`` only the
    rest, each approximately balanced within its side.  Returns the split
    value actually used (adjusted when the estimate failed to separate the
    data).
    """
    group = comm.group
    size = comm.size
    left_set = {r: i for i, r in enumerate(left_ranks)}
    right_set = {r: i for i, r in enumerate(right_ranks)}

    def _partition_at(value: float) -> Tuple[list, list, int, int]:
        lefts: List[Tuple[np.ndarray, np.ndarray]] = []
        rights: List[Tuple[np.ndarray, np.ndarray]] = []
        n_left = 0
        n_right = 0
        tasks = [
            RankTask(
                global_rank,
                _partition_mask_step,
                (dim, value),
                {"points": cluster.ranks[global_rank].points},
            )
            if cluster.ranks[global_rank].n_points
            else None
            for global_rank in group
        ]
        masks = cluster.run_ranks(tasks)
        for local, global_rank in enumerate(group):
            rank = cluster.ranks[global_rank]
            if masks[local] is None:
                lefts.append((rank.points[:0], rank.ids[:0]))
                rights.append((rank.points[:0], rank.ids[:0]))
                continue
            mask = masks[local]
            lefts.append((rank.points[mask], rank.ids[mask]))
            rights.append((rank.points[~mask], rank.ids[~mask]))
            n_left += int(np.count_nonzero(mask))
            n_right += rank.n_points - int(np.count_nonzero(mask))
        return lefts, rights, n_left, n_right

    # Charge the streaming partition pass once per rank.
    for global_rank in group:
        rank = cluster.ranks[global_rank]
        counters = cluster.metrics.for_phase(global_rank)
        counters.elements_moved += rank.n_points
        counters.bytes_streamed += int(rank.points.nbytes)

    left_parts, right_parts, total_left, total_right = _partition_at(split_val)

    if total_left == 0 or total_right == 0:
        # The sampled median failed to separate the data (skewed sample or
        # heavy duplication).  Retry with the midpoint of the global extent,
        # which is guaranteed to split whenever the coordinates are not all
        # identical; otherwise fall back to a positional split (points are
        # then identical along ``dim``, so every box still bounds them).
        extents = []
        for global_rank in group:
            pts = cluster.ranks[global_rank].points
            if pts.shape[0] == 0:
                extents.append(np.array([np.inf, -np.inf]))
            else:
                extents.append(np.array([pts[:, dim].min(), pts[:, dim].max()]))
        reduced = comm.allreduce(extents, lambda a, b: np.array([min(a[0], b[0]), max(a[1], b[1])]))[0]
        gmin, gmax = float(reduced[0]), float(reduced[1])
        if gmin < gmax:
            split_val = (gmin + gmax) / 2.0
            left_parts, right_parts, total_left, total_right = _partition_at(split_val)
        else:
            left_parts, right_parts = [], []
            for global_rank in group:
                rank = cluster.ranks[global_rank]
                cut = int(round(rank.n_points * target))
                left_parts.append((rank.points[:cut], rank.ids[:cut]))
                right_parts.append((rank.points[cut:], rank.ids[cut:]))

    # Build the all-to-all send matrix: each source splits its left part
    # into len(left_ranks) chunks and its right part into len(right_ranks).
    send: List[List[Tuple[np.ndarray, np.ndarray] | None]] = [
        [None for _ in range(size)] for _ in range(size)
    ]
    for src_local, global_rank in enumerate(group):
        lp, li = left_parts[src_local]
        rp, ri = right_parts[src_local]
        for dst_local, dst_rank in enumerate(group):
            if dst_rank in left_set:
                j = left_set[dst_rank]
                chunk = _chunk_slice(lp.shape[0], len(left_ranks), j)
                send[src_local][dst_local] = (lp[chunk], li[chunk])
            else:
                j = right_set[dst_rank]
                chunk = _chunk_slice(rp.shape[0], len(right_ranks), j)
                send[src_local][dst_local] = (rp[chunk], ri[chunk])

    recv = comm.alltoall(send)

    # Each destination keeps the union of what it received.
    for dst_local, global_rank in enumerate(group):
        pieces = [item for item in recv[dst_local] if item is not None and item[0].shape[0] > 0]
        rank = cluster.ranks[global_rank]
        if pieces:
            points = np.concatenate([p for p, _ in pieces], axis=0)
            ids = np.concatenate([i for _, i in pieces])
        else:
            dims = rank.points.shape[1] if rank.points.ndim == 2 else 0
            points = np.empty((0, dims), dtype=np.float64)
            ids = np.empty(0, dtype=np.int64)
        counters = cluster.metrics.for_phase(global_rank)
        counters.bytes_streamed += int(points.nbytes)
        rank.set_points(points, ids)
    return float(split_val)


def _chunk_slice(n: int, n_chunks: int, chunk: int) -> slice:
    """Boundaries of balanced chunk ``chunk`` of ``n`` items in ``n_chunks``."""
    boundaries = np.linspace(0, n, n_chunks + 1).astype(np.int64)
    return slice(int(boundaries[chunk]), int(boundaries[chunk + 1]))


def build_global_tree(
    cluster: Cluster,
    config: PandaConfig | None = None,
    rng: np.random.Generator | None = None,
) -> GlobalTree:
    """Construct the global kd-tree and redistribute points to their owners.

    On return every rank of ``cluster`` owns the points falling into its
    region and the returned :class:`GlobalTree` describes the partition.
    """
    config = config or PandaConfig()
    rng = rng or np.random.default_rng(config.seed)
    dims = 0
    for rank in cluster.ranks:
        if rank.points.ndim == 2 and rank.points.shape[1] > 0:
            dims = rank.points.shape[1]
            break
    if dims == 0:
        raise ValueError("cluster ranks hold no points; distribute data before construction")
    if cluster.n_ranks == 1:
        return GlobalTree.single_rank(dims)

    nodes: List[GlobalTreeNode] = [GlobalTreeNode()]
    # Work queue of (rank group, node index).
    groups: List[Tuple[List[int], int]] = [(list(range(cluster.n_ranks)), 0)]
    while groups:
        next_groups: List[Tuple[List[int], int]] = []
        for group, node_idx in groups:
            if len(group) == 1:
                nodes[node_idx].rank = group[0]
                nodes[node_idx].split_dim = LEAF
                continue
            comm = cluster.comm.for_group(group)
            n_left = (len(group) + 1) // 2
            left_ranks = group[:n_left]
            right_ranks = group[n_left:]
            target = n_left / len(group)

            with cluster.metrics.phase(PHASE_GLOBAL_TREE):
                dim = _group_split_dimension(cluster, comm, config, rng)
                split_val = _group_split_value(cluster, comm, dim, target, config, rng)
            with cluster.metrics.phase(PHASE_REDISTRIBUTE):
                split_val = _exchange_partitions(
                    cluster, comm, dim, split_val, left_ranks, right_ranks, target
                )

            left_idx = len(nodes)
            nodes.append(GlobalTreeNode())
            right_idx = len(nodes)
            nodes.append(GlobalTreeNode())
            nodes[node_idx].split_dim = dim
            nodes[node_idx].split_val = split_val
            nodes[node_idx].left = left_idx
            nodes[node_idx].right = right_idx
            next_groups.append((left_ranks, left_idx))
            next_groups.append((right_ranks, right_idx))
        groups = next_groups

    return GlobalTree.from_nodes(nodes, n_ranks=cluster.n_ranks, dims=dims)
