"""High-level PANDA façade: fit a distributed index, query it, model time.

:class:`PandaKNN` wires the whole pipeline together: distribute points to a
simulated cluster, build the global kd-tree (with redistribution), build the
per-rank local trees, then answer distributed KNN queries.  It also exposes
the modeled construction/query times and the Fig. 5 breakdowns.

:class:`ReplicatedKNN` implements the *shared kd-tree* mode of Fig. 8(b):
the full tree is replicated on every rank and queries are simply divided
among ranks — no global tree, no remote-query traffic, but every rank must
hold the entire dataset.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.cluster.cost_model import CostModel, TimeBreakdown
from repro.cluster.executor import RankExecutor, RankTask
from repro.cluster.machine import MachineSpec
from repro.cluster.simulator import Cluster
from repro.core.breakdown import (
    CONSTRUCTION_PHASES,
    construction_breakdown,
    default_cost_model,
    query_breakdown,
)
from repro.core.config import PandaConfig
from repro.core.global_tree import GlobalTree
from repro.core.local_phase import LOCAL_TREE_KEY, build_local_trees, local_tree_of
from repro.core.query_engine import (
    QUERY_PHASES,
    DistributedQueryEngine,
    QueryReport,
    _local_knn_step,
)
from repro.core.redistribution import build_global_tree
from repro.kdtree.build import build_kdtree
from repro.kdtree.query import QueryStats
from repro.kdtree.tree import KDTree


class PandaKNN:
    """Distributed kd-tree k-nearest-neighbour index (the paper's PANDA).

    Parameters
    ----------
    n_ranks:
        Number of simulated nodes.
    machine:
        Hardware description used by the cost model (defaults to an Edison
        node).
    threads_per_rank:
        Modeled threads per node (defaults to the machine's core count).
    config:
        Algorithmic parameters (:class:`PandaConfig`).
    executor:
        Rank-step dispatch backend (``None``/``"inline"``, ``"thread"``,
        ``"process"`` or a :class:`~repro.cluster.executor.RankExecutor`).
        Results, query statistics and communicator byte accounting are
        identical across executors; call :meth:`close` (or use the index as
        a context manager) to release pooled workers.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import PandaKNN
    >>> points = np.random.default_rng(0).normal(size=(2000, 3))
    >>> index = PandaKNN(n_ranks=4).fit(points)
    >>> report = index.query(points[:10], k=5)
    >>> report.distances.shape
    (10, 5)
    """

    def __init__(
        self,
        n_ranks: int = 4,
        machine: MachineSpec | None = None,
        threads_per_rank: int | None = None,
        config: PandaConfig | None = None,
        executor: "RankExecutor | str | None" = None,
    ) -> None:
        self.config = config or PandaConfig()
        self.cluster = Cluster(
            n_ranks=n_ranks,
            machine=machine,
            threads_per_rank=threads_per_rank,
            executor=executor,
        )
        self.global_tree: GlobalTree | None = None
        self._engine: DistributedQueryEngine | None = None
        self._fitted = False

    def close(self) -> None:
        """Release executor workers and shared memory (idempotent)."""
        self.cluster.close()

    def __enter__(self) -> "PandaKNN":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def fit(self, points: np.ndarray, ids: np.ndarray | None = None) -> "PandaKNN":
        """Build the distributed index over ``points``.

        Points are first block-distributed (as if read from a partitioned
        file), the global kd-tree is constructed with full redistribution,
        then every rank builds its local kd-tree.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[0] == 0:
            raise ValueError("cannot fit an index over an empty point set")
        self.cluster.distribute_block(points, ids)
        self.global_tree = build_global_tree(self.cluster, self.config)
        build_local_trees(self.cluster, self.config)
        self._engine = DistributedQueryEngine(self.cluster, self.global_tree, self.config)
        self._fitted = True
        return self

    @classmethod
    def from_cluster(cls, cluster: Cluster, config: PandaConfig | None = None) -> "PandaKNN":
        """Build an index over points already distributed on ``cluster``."""
        index = cls.__new__(cls)
        index.config = config or PandaConfig()
        index.cluster = cluster
        index.global_tree = build_global_tree(cluster, index.config)
        build_local_trees(cluster, index.config)
        index._engine = DistributedQueryEngine(cluster, index.global_tree, index.config)
        index._fitted = True
        return index

    # ------------------------------------------------------------------
    # Snapshot persistence
    # ------------------------------------------------------------------
    def snapshot(self, path, layout: str = "files") -> "PandaKNN":
        """Write the fitted index to directory ``path`` (warm-start snapshot).

        Persists the config, cluster shape, global tree and every rank's
        local tree so :meth:`restore` can rebuild the index without
        re-running construction; restored indices answer queries
        byte-identically.  ``layout="files"`` writes one ``.npz`` per rank;
        ``layout="slabs"`` packs every rank's tree into two shared
        :class:`~repro.io.column_store.ColumnStore` datasets read slab-wise
        per rank (the layout lazy restores read from).  Returns ``self``
        for chaining.
        """
        from repro.core.snapshot import write_snapshot

        self._require_fitted()
        write_snapshot(self, path, layout=layout)
        return self

    @classmethod
    def restore(
        cls,
        path,
        machine: MachineSpec | None = None,
        lazy: bool = False,
        executor: "RankExecutor | str | None" = None,
    ) -> "PandaKNN":
        """Load an index previously written by :meth:`snapshot`.

        The restored index starts with fresh metrics: query counters
        accumulate normally but construction counters are zero (a warm
        start performs no construction).  With ``lazy=True`` the per-rank
        local trees are *not* materialised up front: each rank holds a
        loader that reads its slab on first touch (first query routed to
        it, explicit :meth:`local_trees`, or a follow-up :meth:`snapshot`),
        so a warm start over many ranks costs only the global-tree read.
        Until a rank is touched the cluster reports zero points for it.
        """
        from repro.core.snapshot import read_snapshot

        return read_snapshot(path, machine=machine, lazy=lazy, executor=executor)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def query(self, queries: np.ndarray, k: int | None = None) -> QueryReport:
        """Run the distributed query protocol; returns the full report."""
        self._require_fitted()
        assert self._engine is not None
        return self._engine.query(queries, k=k)

    def kneighbors(self, queries: np.ndarray, k: int | None = None) -> Tuple[np.ndarray, np.ndarray]:
        """Convenience wrapper returning only ``(distances, ids)``."""
        report = self.query(queries, k=k)
        return report.distances, report.ids

    # ------------------------------------------------------------------
    # Introspection & performance modelling
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of simulated nodes."""
        return self.cluster.n_ranks

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._fitted

    def local_trees(self) -> list[KDTree]:
        """The per-rank local kd-trees (rank order; materialises lazy ranks)."""
        self._require_fitted()
        return [local_tree_of(self.cluster, rank.rank) for rank in self.cluster.ranks]

    def load_imbalance(self) -> float:
        """Max/mean points per rank after redistribution."""
        return self.cluster.load_imbalance()

    def cost_model(self, machine: MachineSpec | None = None) -> CostModel:
        """Cost model configured for this cluster (query comm overlapped)."""
        return default_cost_model(self.cluster, machine)

    def construction_time(self, cost_model: CostModel | None = None) -> TimeBreakdown:
        """Modeled construction time broken down by phase."""
        cost_model = cost_model or self.cost_model()
        return cost_model.evaluate(self.cluster.metrics, phases=list(CONSTRUCTION_PHASES))

    def query_time(self, cost_model: CostModel | None = None) -> TimeBreakdown:
        """Modeled query time broken down by phase (cumulative over queries)."""
        cost_model = cost_model or self.cost_model()
        return cost_model.evaluate(self.cluster.metrics, phases=list(QUERY_PHASES))

    def construction_breakdown(self, as_fractions: bool = True) -> Dict[str, float]:
        """Fig. 5(b)-style construction breakdown."""
        return construction_breakdown(self.cluster, self.cost_model(), as_fractions)

    def query_breakdown(self, as_fractions: bool = True) -> Dict[str, float]:
        """Fig. 5(c)-style query breakdown."""
        return query_breakdown(self.cluster, self.cost_model(), as_fractions)

    def reset_query_metrics(self) -> None:
        """Clear query-phase counters (construction counters are preserved)."""
        for rank_counters in self.cluster.metrics.all_ranks():
            for phase in QUERY_PHASES:
                rank_counters.phases.pop(phase, None)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("index is not fitted; call fit(points) first")


class ReplicatedKNN:
    """Shared (replicated) kd-tree KNN across ranks (Fig. 8(b) mode).

    Every rank holds a copy of the same kd-tree; incoming queries are simply
    divided among ranks.  This is how the multi-GPU buffered kd-tree
    baseline of Gieseke et al. operates and how the paper runs its
    psf_mod_mag / all_mag KNL scaling experiment: it avoids all inter-rank
    query traffic but requires the entire dataset to fit on one node.
    """

    def __init__(
        self,
        n_ranks: int = 1,
        machine: MachineSpec | None = None,
        threads_per_rank: int | None = None,
        config: PandaConfig | None = None,
        executor: "RankExecutor | str | None" = None,
    ) -> None:
        self.config = config or PandaConfig()
        self.cluster = Cluster(
            n_ranks=n_ranks,
            machine=machine,
            threads_per_rank=threads_per_rank,
            executor=executor,
        )
        self.tree: KDTree | None = None

    def close(self) -> None:
        """Release executor workers and shared memory (idempotent)."""
        self.cluster.close()

    def __enter__(self) -> "ReplicatedKNN":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def fit(self, points: np.ndarray, ids: np.ndarray | None = None) -> "ReplicatedKNN":
        """Build one kd-tree and broadcast it to every rank."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        with self.cluster.metrics.phase("replicate_build"):
            tree = build_kdtree(
                points, ids=ids, config=self.config.local, threads=self.cluster.threads_per_rank
            )
            tree.stats.merge_into(
                {name: self.cluster.metrics.rank(0).phase(name) for name in tree.stats.phase_counters}
            )
        with self.cluster.metrics.phase("replicate_broadcast"):
            self.cluster.comm.bcast((tree.points, tree.ids), root=0)
        for rank in self.cluster.ranks:
            rank.store[LOCAL_TREE_KEY] = tree
        self.tree = tree
        return self

    def query(self, queries: np.ndarray, k: int | None = None) -> Tuple[np.ndarray, np.ndarray, QueryStats]:
        """Answer queries by splitting them evenly across the ranks."""
        if self.tree is None:
            raise RuntimeError("index is not fitted; call fit(points) first")
        k = self.config.k if k is None else k
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = queries.shape[0]
        out_d = np.full((n, k), np.inf)
        out_i = np.full((n, k), -1, dtype=np.int64)
        total_stats = QueryStats()
        boundaries = np.linspace(0, n, self.cluster.n_ranks + 1).astype(np.int64)
        with self.cluster.metrics.phase("query_local_knn"):
            # Same step as the distributed engine's owner-side local KNN:
            # an unbounded batched search of one tree.
            tasks = [
                RankTask(
                    rank.rank,
                    _local_knn_step,
                    (queries[boundaries[rank.rank] : boundaries[rank.rank + 1]], k),
                    {"tree": self.tree},
                )
                if boundaries[rank.rank + 1] > boundaries[rank.rank]
                else None
                for rank in self.cluster.ranks
            ]
            for rank, out in zip(self.cluster.ranks, self.cluster.run_ranks(tasks)):
                if out is None:
                    continue
                lo, hi = int(boundaries[rank.rank]), int(boundaries[rank.rank + 1])
                d, i, stats = out
                out_d[lo:hi] = d
                out_i[lo:hi] = i
                stats.charge(self.cluster.metrics.for_phase(rank.rank), self.tree.dims)
                total_stats.merge(stats)
        return out_d, out_i, total_stats

    def query_time(self, cost_model: CostModel | None = None) -> TimeBreakdown:
        """Modeled query time (single ``query_local_knn`` phase)."""
        cost_model = cost_model or default_cost_model(self.cluster)
        return cost_model.evaluate(self.cluster.metrics, phases=["query_local_knn"])
