"""repro — reproduction of PANDA: extreme-scale parallel KNN on distributed architectures.

The package re-implements, in Python, the system described in

    Patwary et al., "PANDA: Extreme Scale Parallel K-Nearest Neighbor on
    Distributed Architectures", IPDPS 2016 (arXiv:1607.08220)

together with every substrate it depends on: a simulated distributed-memory
cluster with full communication accounting and an analytic cost model
(:mod:`repro.cluster`), the kd-tree construction/query kernels
(:mod:`repro.kdtree`), the distributed construction and query protocol that
is the paper's contribution (:mod:`repro.core`), the baselines it compares
against (:mod:`repro.baselines`), synthetic analogues of its science
datasets (:mod:`repro.datasets`), a chunked column store
(:mod:`repro.io`), and the experiment drivers regenerating every table and
figure of the evaluation (:mod:`repro.experiments`, driven by the
``benchmarks/`` harness).

Quick start
-----------
>>> import numpy as np
>>> from repro import PandaKNN
>>> points = np.random.default_rng(0).normal(size=(5000, 3))
>>> index = PandaKNN(n_ranks=4).fit(points)
>>> distances, ids = index.kneighbors(points[:10], k=5)
>>> distances.shape
(10, 5)
"""

from repro.cluster import Cluster, CostModel, MachineSpec
from repro.core import (
    KNNClassifier,
    KNNRegressor,
    PandaConfig,
    PandaKNN,
    ReplicatedKNN,
)
from repro.fleet import AdmissionPolicy, KNNFleet, ShardPlanner
from repro.kdtree import KDTree, KDTreeConfig, batch_knn, brute_force_knn, build_kdtree, knn_search
from repro.service import KNNService, LocalTreeBackend, MicroBatchPolicy, PandaBackend, RebuildPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Cluster",
    "CostModel",
    "MachineSpec",
    "PandaKNN",
    "ReplicatedKNN",
    "PandaConfig",
    "KNNClassifier",
    "KNNRegressor",
    "KDTree",
    "KDTreeConfig",
    "build_kdtree",
    "knn_search",
    "batch_knn",
    "brute_force_knn",
    "KNNService",
    "MicroBatchPolicy",
    "RebuildPolicy",
    "LocalTreeBackend",
    "PandaBackend",
    "KNNFleet",
    "ShardPlanner",
    "AdmissionPolicy",
]
