"""LRU result cache for the online KNN service.

Hot-key workloads (a small set of popular queries asked over and over, the
skewed trace of the throughput benchmark) are served from this cache without
touching the index at all.  Entries are keyed on the exact query bytes plus
``k``.

Invalidation is the service's job and comes in two grades, counted
separately in :class:`CacheStats`:

* **full clears** (:meth:`LRUCache.clear`) on rebuilds, where the whole
  mapping from query to answer is conservatively wiped;
* **selective drops** (:meth:`LRUCache.drop`) on streaming inserts/deletes,
  where the service drops only the keys whose stored k-th-distance ball can
  intersect the mutated points — every surviving entry is still exact with
  respect to the current live point set.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable, List, Tuple

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance.

    ``full_clears`` counts whole-cache wipes (one per :meth:`LRUCache.clear`
    of a non-empty cache, regardless of how many keys died); ``keys_dropped``
    counts individual keys removed by selective invalidation — the two are
    deliberately separate so a whole-cache wipe is never mistaken for one
    key drop (or vice versa).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    full_clears: int = 0
    keys_dropped: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss statistics.

    A ``capacity`` of 0 disables caching (every lookup misses, puts are
    dropped), which lets the service expose a single code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """Return the cached value or ``None``, updating recency and stats."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) ``key``, evicting the least recent on overflow."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def items(self) -> List[Tuple[Hashable, object]]:
        """Snapshot of the current ``(key, value)`` pairs (recency order).

        A materialised list, not a live view: selective invalidation
        iterates it while calling :meth:`drop`.
        """
        return list(self._entries.items())

    def drop(self, keys: Iterable[Hashable]) -> int:
        """Selectively remove ``keys`` (absent ones ignored); returns count.

        Each removed key is counted in ``stats.keys_dropped``.
        """
        dropped = 0
        for key in keys:
            if self._entries.pop(key, None) is not None:
                dropped += 1
        self.stats.keys_dropped += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry; counted as one full clear only when non-empty."""
        if self._entries:
            self._entries.clear()
            self.stats.full_clears += 1


def query_key(query: np.ndarray, k: int) -> Tuple[int, bytes]:
    """Cache key of one query row: exact coordinate bytes plus ``k``."""
    return k, np.ascontiguousarray(query, dtype=np.float64).tobytes()
