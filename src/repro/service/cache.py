"""LRU result cache for the online KNN service.

Hot-key workloads (a small set of popular queries asked over and over, the
skewed trace of the throughput benchmark) are served from this cache without
touching the index at all.  Entries are keyed on the exact query bytes plus
``k``; the service clears the cache on every mutation (insert, delete,
rebuild) so a hit is always exact with respect to the current live point
set.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Tuple

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when never looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss statistics.

    A ``capacity`` of 0 disables caching (every lookup misses, puts are
    dropped), which lets the service expose a single code path.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable):
        """Return the cached value or ``None``, updating recency and stats."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value) -> None:
        """Insert (or refresh) ``key``, evicting the least recent on overflow."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry; counted as an invalidation only when non-empty."""
        if self._entries:
            self._entries.clear()
            self.stats.invalidations += 1


def query_key(query: np.ndarray, k: int) -> Tuple[int, bytes]:
    """Cache key of one query row: exact coordinate bytes plus ``k``."""
    return k, np.ascontiguousarray(query, dtype=np.float64).tobytes()
