"""Streaming-update state: brute-force delta buffer plus tombstones.

The index served by :class:`~repro.service.service.KNNService` is immutable
(kd-trees are built once), so streaming updates are absorbed the classic
LSM way:

* **inserts** land in a small in-memory *delta buffer* that is searched by
  brute force and fused into tree answers;
* **deletes** of points that live in the tree become *tombstones* — the
  service over-fetches ``k + len(tombstones)`` neighbours from the tree and
  filters the dead ids out, which is exact because at most
  ``len(tombstones)`` of the over-fetched neighbours can be dead;
* a **rebuild** folds both into a fresh tree (see
  :class:`~repro.service.service.RebuildPolicy`).

Both structures are kept small by the rebuild policy, so the brute-force
scan and the over-fetch stay cheap.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from repro.kdtree.query import brute_force_knn


class DeltaBuffer:
    """Buffered inserts (brute-force searched) and tombstoned tree ids."""

    def __init__(self, dims: int) -> None:
        if dims <= 0:
            raise ValueError(f"dims must be positive, got {dims}")
        self.dims = dims
        self._points: List[np.ndarray] = []
        self._ids: List[np.ndarray] = []
        self._id_set: Set[int] = set()
        self.tombstones: Set[int] = set()
        self._dense: Tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_inserted(self) -> int:
        """Points currently buffered."""
        return len(self._id_set)

    @property
    def n_tombstones(self) -> int:
        """Tree points currently marked deleted."""
        return len(self.tombstones)

    @property
    def n_updates(self) -> int:
        """Total un-absorbed updates (inserts + tombstones)."""
        return self.n_inserted + self.n_tombstones

    def contains(self, point_id: int) -> bool:
        """True when ``point_id`` is buffered (and not yet deleted)."""
        return point_id in self._id_set

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray, ids: np.ndarray) -> None:
        """Buffer new points; ids must not collide with buffered ones."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        ids = np.asarray(ids, dtype=np.int64)
        if points.shape[1] != self.dims:
            raise ValueError(f"points have {points.shape[1]} dims, index has {self.dims}")
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids length must match number of points")
        if ids.size and int(ids.min()) < 0:
            raise ValueError("ids must be non-negative (-1 is the padding sentinel)")
        fresh = set(int(i) for i in ids)
        if len(fresh) != ids.shape[0]:
            raise ValueError("duplicate ids within one insert batch")
        collisions = fresh & self._id_set
        if collisions:
            raise ValueError(f"ids already buffered: {sorted(collisions)[:5]}")
        self._points.append(points)
        self._ids.append(ids)
        self._id_set |= fresh
        self._dense = None

    def delete_buffered(self, point_id: int) -> None:
        """Remove a buffered point by id (must be buffered)."""
        if point_id not in self._id_set:
            raise KeyError(f"id {point_id} is not buffered")
        self._id_set.discard(point_id)
        # Drop the row eagerly so a later re-insert of the same id never
        # resurrects the stale coordinates.
        pruned_points: List[np.ndarray] = []
        pruned_ids: List[np.ndarray] = []
        for pts, ids in zip(self._points, self._ids):
            keep = ids != point_id
            if not keep.all():
                pts, ids = pts[keep], ids[keep]
            if ids.size:
                pruned_points.append(pts)
                pruned_ids.append(ids)
        self._points = pruned_points
        self._ids = pruned_ids
        self._dense = None

    def add_tombstone(self, point_id: int) -> None:
        """Mark a tree-resident point as deleted."""
        self.tombstones.add(int(point_id))

    def clear(self) -> None:
        """Drop all buffered state (after a rebuild absorbed it)."""
        self._points.clear()
        self._ids.clear()
        self._id_set.clear()
        self.tombstones.clear()
        self._dense = None

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def live_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(points, ids)`` of the buffered (non-deleted) inserts."""
        if self._dense is None:
            if self._points:
                self._dense = (np.concatenate(self._points, axis=0), np.concatenate(self._ids))
            else:
                self._dense = (np.empty((0, self.dims)), np.empty(0, dtype=np.int64))
        return self._dense

    def query(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Brute-force KNN over the buffered points (``inf``/``-1`` padded)."""
        pts, ids = self.live_arrays()
        return brute_force_knn(pts, ids, queries, k)
