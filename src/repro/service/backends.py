"""Index backends the online service can sit on top of.

:class:`~repro.service.service.KNNService` only needs four things from an
index: answer a query batch, enumerate its points (for rebuilds), refit
itself over a new point set, and round-trip through a snapshot.  Two
backends provide them:

* :class:`LocalTreeBackend` — one in-process kd-tree queried through the
  vectorised :func:`~repro.kdtree.query.batch_knn`; the single-node serving
  configuration.
* :class:`PandaBackend` — a fitted :class:`~repro.core.panda.PandaKNN`
  queried through the five-step distributed protocol; the scale-out
  configuration (micro-batches become the protocol's query batches).
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple

import numpy as np

from repro.core.panda import PandaKNN
from repro.kdtree.build import build_kdtree
from repro.kdtree.query import QueryStats, batch_knn
from repro.kdtree.serialize import load_kdtree, save_kdtree
from repro.kdtree.tree import KDTree, KDTreeConfig


class LocalTreeBackend:
    """Single kd-tree backend (vectorised batched traversal)."""

    def __init__(self, tree: KDTree) -> None:
        self.tree = tree

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        ids: np.ndarray | None = None,
        config: KDTreeConfig | None = None,
    ) -> "LocalTreeBackend":
        """Build a kd-tree over ``points`` and wrap it."""
        return cls(build_kdtree(points, ids=ids, config=config or KDTreeConfig()))

    @property
    def dims(self) -> int:
        """Point dimensionality (0 for an empty tree)."""
        return self.tree.dims if self.tree.n_points else int(self.tree.points.shape[1])

    @property
    def n_points(self) -> int:
        """Number of indexed points."""
        return self.tree.n_points

    @property
    def precision(self) -> str:
        """Distance-kernel tier of the wrapped index."""
        return self.tree.config.precision

    def kneighbors(
        self,
        queries: np.ndarray,
        k: int,
        precision: str | None = None,
        stats: QueryStats | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` of the k nearest tree points per query row.

        ``precision`` overrides the index tier for this call (``None``
        falls back to ``tree.config.precision``); answers are certified
        byte-identical across tiers.  ``stats`` optionally accumulates the
        traversal's :class:`~repro.kdtree.query.QueryStats` (recheck
        counts included).
        """
        d, i, _ = batch_knn(self.tree, queries, k, stats=stats, precision=precision)
        return d, i

    def all_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """Every indexed ``(point, id)`` pair (used by rebuilds)."""
        return self.tree.points, self.tree.ids

    def refit(self, points: np.ndarray, ids: np.ndarray) -> "LocalTreeBackend":
        """Fresh backend over a new point set, same construction config."""
        return LocalTreeBackend(build_kdtree(points, ids=ids, config=self.tree.config))

    def close(self) -> None:
        """Nothing pooled to release (protocol uniformity with PandaBackend)."""

    def save(self, path) -> Path:
        """Snapshot the tree; see :meth:`repro.kdtree.tree.KDTree.save`."""
        return save_kdtree(self.tree, path)

    @classmethod
    def load(cls, path) -> "LocalTreeBackend":
        """Warm-start from a kd-tree snapshot (either snapshot backend)."""
        return cls(load_kdtree(path))


class PandaBackend:
    """Distributed PANDA backend (simulated multi-rank index)."""

    def __init__(self, index: PandaKNN) -> None:
        if not index.is_fitted:
            raise ValueError("PandaBackend requires a fitted PandaKNN index")
        self.index = index

    @classmethod
    def fit(
        cls,
        points: np.ndarray,
        ids: np.ndarray | None = None,
        n_ranks: int = 4,
        **panda_kwargs,
    ) -> "PandaBackend":
        """Build a distributed index over ``points`` and wrap it.

        ``panda_kwargs`` forward to :class:`~repro.core.panda.PandaKNN`;
        notably ``executor="thread"``/``"process"`` serves micro-batches
        through a real parallel rank executor (answers are byte-identical
        to the inline default).
        """
        return cls(PandaKNN(n_ranks=n_ranks, **panda_kwargs).fit(points, ids))

    @property
    def dims(self) -> int:
        """Point dimensionality of the indexed data."""
        return int(self.index.global_tree.dims)

    @property
    def n_points(self) -> int:
        """Total points across all ranks."""
        return self.index.cluster.total_points()

    @property
    def precision(self) -> str:
        """Distance-kernel tier of the distributed index's config."""
        return self.index.config.precision

    def kneighbors(
        self,
        queries: np.ndarray,
        k: int,
        precision: str | None = None,
        stats: QueryStats | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` via the distributed query protocol.

        The protocol serves at the index's own tier; a conflicting
        per-call override is rejected rather than silently ignored.
        ``stats`` is accepted for backend-protocol parity — the
        distributed path accounts its work in the cluster phase counters
        instead.
        """
        if precision is not None and precision != self.precision:
            raise ValueError(
                f"PandaBackend serves at its index tier {self.precision!r}; "
                f"cannot override to {precision!r} per request"
            )
        return self.index.kneighbors(queries, k=k)

    def all_points(self) -> Tuple[np.ndarray, np.ndarray]:
        """Gathered ``(points, ids)`` across ranks (used by rebuilds).

        Materialises every lazily restored rank first — a rebuild must fold
        the *whole* index, not just the ranks queries happened to touch.
        """
        self.index.local_trees()
        return self.index.cluster.gather_points(), self.index.cluster.gather_ids()

    def refit(self, points: np.ndarray, ids: np.ndarray) -> "PandaBackend":
        """Fresh distributed index over a new point set, same cluster shape.

        The rank executor (and its pooled workers) carries over, so a
        rebuild under a process executor does not respawn the pool.
        """
        fresh = PandaKNN(
            n_ranks=self.index.n_ranks,
            machine=self.index.cluster.machine,
            threads_per_rank=self.index.cluster.threads_per_rank,
            config=self.index.config,
            executor=self.index.cluster.executor,
        )
        # Shutdown responsibility follows the live index down the refit
        # chain; the retired cluster's close() leaves the shared pool alone.
        self.index.cluster.transfer_executor_ownership(fresh.cluster)
        return PandaBackend(fresh.fit(points, ids))

    def comm_totals(self) -> dict:
        """Executor byte/message accounting, aggregated over all ranks.

        The presence of this method is what opts a backend into the
        ``repro_executor_*`` metric families (see
        :mod:`repro.obs.collectors`); local-tree backends have no
        communication to report and deliberately omit it.
        """
        totals = self.index.cluster.metrics.grand_total()
        return {
            "bytes_sent": int(totals.bytes_sent),
            "bytes_received": int(totals.bytes_received),
            "messages_sent": int(totals.messages_sent),
            "messages_received": int(totals.messages_received),
        }

    def close(self) -> None:
        """Release the index's executor workers/shared memory (if owned)."""
        self.index.close()

    def transfer_executor_ownership_to(self, other: "PandaBackend") -> None:
        """Hand pooled-executor shutdown responsibility to ``other``.

        The inverse of what :meth:`refit` does implicitly: a service that
        abandons a freshly refit backend (a cancelled background rebuild)
        must pass ownership back to the backend that keeps serving, or no
        live cluster would ever shut the shared pool down.
        """
        self.index.cluster.transfer_executor_ownership(other.index.cluster)

    def save(self, path, layout: str = "files") -> Path:
        """Snapshot the index; see :meth:`repro.core.panda.PandaKNN.snapshot`."""
        self.index.snapshot(path, layout=layout)
        return Path(path)

    @classmethod
    def load(cls, path, lazy: bool = False, executor=None) -> "PandaBackend":
        """Warm-start from a :meth:`repro.core.panda.PandaKNN.snapshot` directory.

        ``lazy=True`` defers per-rank tree materialisation to first touch.
        Note that :attr:`n_points` under-reports until ranks are touched,
        and that wrapping the backend in a :class:`KNNService` materialises
        everything up front anyway (the service indexes the full id set);
        laziness pays off for direct query use.
        """
        return cls(PandaKNN.restore(path, lazy=lazy, executor=executor))
