"""Online KNN serving: micro-batched queries over an immutable index.

:class:`KNNService` turns the batch-oriented PANDA index into an online
front end.  Single queries are not answered one at a time — the whole point
of the paper's vectorised traversal (and of the buffered kd-tree baseline
it compares against) is that coalescing queries amortises traversal cost —
so the service enqueues them and dispatches *micro-batches* under a
size-or-deadline policy:

* a batch is dispatched as soon as the queue reaches the policy's target
  size (adaptively sized from the observed arrival rate, so the target
  approximates "what arrives within one deadline window");
* a request is never held longer than ``max_delay_s`` — the deadline flush
  dispatches whatever is queued once the oldest request's deadline passes.

Time is event-driven: callers stamp each request with its arrival time
(open-loop traces do this from a generator; interactive callers may omit it)
and the service advances a logical clock through a single-server queue
model — dispatch happens at ``max(flush time, server free)``, completion at
dispatch plus the *measured* wall-clock cost of the batch computation.  Per
-request latency is completion minus arrival, so queueing, batching delay
and compute all show up in the reported percentiles.

Streaming updates (:meth:`KNNService.insert` / :meth:`KNNService.delete`)
are absorbed by a brute-force delta buffer and a tombstone set
(:mod:`repro.service.delta`) whose answers are fused with the tree's; a
:class:`RebuildPolicy` folds them into a fresh index before either grows
enough to hurt.  Mutations invalidate the LRU result cache *selectively*:
only entries whose stored k-th-distance ball can intersect the mutated
points are dropped, so unrelated hot keys keep hitting — and every
surviving entry is still exact against the current live set.

Rebuilds come in two disciplines.  The default foreground
:meth:`KNNService.rebuild` blocks the single server (queries arriving
meanwhile queue behind it).  With ``background_rebuild=True`` (or an
explicit :meth:`KNNService.begin_background_rebuild`) the fresh index is
built off to the side while the *old* snapshot keeps serving; once the
build's logical completion time passes, the new index is swapped in
atomically and the delta buffer is reconciled against it — updates that
arrived mid-build survive the swap exactly.  With a ``snapshot_root`` every
background build is also persisted as a versioned on-disk snapshot
(``v0001``, ``v0002``, ...) whose ``CURRENT`` pointer is promoted at swap
time (:mod:`repro.core.snapshot`).

With a concurrent ``dispatcher`` (:mod:`repro.fleet.dispatch`) the service
**pipelines** its micro-batches: batch N computes on a worker thread over a
frozen snapshot of the index state while the submitting thread keeps
accumulating batch N+1.  The pipeline is depth one and every fold-back
(results, cache, records, the logical clock) happens in the submitting
thread at harvest time, so answers and accounting are byte-identical to the
synchronous path; mutations and closed-loop clock reads drain the pipeline
first, which is what keeps every cached entry exact against the live set.
The dispatcher is an explicit opt-in — ``REPRO_DISPATCHER`` never changes a
service's behaviour, only the fleet's default.  All public methods are
additionally safe under concurrent callers (one re-entrant lock).
"""

from __future__ import annotations

import shutil
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import exactness_path, requires_lock
from repro.analysis.runtime import guarded, new_rlock
from repro.core.snapshot import allocate_version_dir, promote_version
from repro.kdtree.leafblocks import PRECISIONS
from repro.kdtree.query import QueryStats, brute_force_knn
from repro.obs.clock import MONOTONIC, Clock
from repro.obs.profiler import phase
from repro.service.cache import CacheStats, LRUCache, query_key
from repro.service.delta import DeltaBuffer


@dataclass(frozen=True)
class MicroBatchPolicy:
    """Size-or-deadline micro-batching parameters.

    Attributes
    ----------
    max_batch:
        Hard cap on queries per dispatched batch (and the fixed target when
        ``adaptive`` is off).
    min_batch:
        Lower bound of the adaptive target.
    max_delay_s:
        Maximum time a request may wait in the queue before a deadline
        flush dispatches it.
    adaptive:
        When True the target batch size tracks ``arrival_rate x
        max_delay_s`` (clipped to ``[min_batch, max_batch]``): at low rates
        requests go out near-immediately in small batches, under load the
        batches grow toward the cap.
    ewma_alpha:
        Smoothing factor of the inter-arrival EWMA behind the adaptive
        target.
    """

    max_batch: int = 256
    min_batch: int = 1
    max_delay_s: float = 1e-3
    adaptive: bool = True
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if not 0 < self.min_batch <= self.max_batch:
            raise ValueError(
                f"min_batch must be in [1, max_batch], got {self.min_batch} vs {self.max_batch}"
            )
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be non-negative, got {self.max_delay_s}")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")


@dataclass(frozen=True)
class RebuildPolicy:
    """When to fold the delta buffer and tombstones into a fresh index.

    Attributes
    ----------
    max_inserts:
        Rebuild once this many inserted points are buffered (bounds the
        brute-force scan the delta buffer adds to every batch).
    max_tombstones:
        Rebuild once this many tree points are deleted (bounds the
        ``k + tombstones`` over-fetch the exact delete filter needs).
    max_staleness_s:
        Rebuild once the oldest un-absorbed update is this old (logical
        service time), regardless of buffer sizes.
    """

    max_inserts: int = 4096
    max_tombstones: int = 256
    max_staleness_s: float = np.inf

    def __post_init__(self) -> None:
        if self.max_inserts <= 0:
            raise ValueError(f"max_inserts must be positive, got {self.max_inserts}")
        if self.max_tombstones <= 0:
            raise ValueError(f"max_tombstones must be positive, got {self.max_tombstones}")
        if self.max_staleness_s <= 0:
            raise ValueError(f"max_staleness_s must be positive, got {self.max_staleness_s}")


@dataclass
class RequestRecord:
    """Per-request latency accounting."""

    request_id: int
    arrival: float
    dispatch: float
    completion: float
    cache_hit: bool
    batch_size: int

    @property
    def latency(self) -> float:
        """End-to-end latency: completion minus arrival."""
        return self.completion - self.arrival

    @property
    def queue_delay(self) -> float:
        """Time spent waiting before dispatch."""
        return self.dispatch - self.arrival


class RecordRing(Sequence):
    """Bounded request-record log: a ring buffer with exact running totals.

    Keeps at most ``capacity`` recent :class:`RequestRecord` entries for
    inspection and windowed percentiles, while the aggregate statistics
    (count, mean/max latency, span, cache hits, batch sizes) are accumulated
    over *every* record ever appended — so :meth:`summary` reports exact
    aggregates no matter how small the window is.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"retention capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: Deque[RequestRecord] = deque(maxlen=capacity)
        self._n = 0
        self._latency_sum = 0.0
        self._latency_max = 0.0
        self._first_arrival = np.inf
        self._last_completion = -np.inf
        self._cache_hits = 0
        self._batch_sum = 0
        self._n_batched = 0

    # -- sequence protocol (slices included, so existing callers keep working)
    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index):
        if isinstance(index, slice):
            # Slicing is a rare introspection path; appends stay O(1).
            return list(self._items)[index]
        return self._items[index]

    def __iter__(self):
        return iter(self._items)

    @property
    def n_total(self) -> int:
        """Records ever appended (evicted ones included)."""
        return self._n

    @property
    def n_evicted(self) -> int:
        """Records dropped from the window so far."""
        return self._n - len(self._items)

    def append(self, record: RequestRecord) -> None:
        """Add a record, updating exact aggregates and trimming the window."""
        self._n += 1
        self._latency_sum += record.latency
        self._latency_max = max(self._latency_max, record.latency)
        self._first_arrival = min(self._first_arrival, record.arrival)
        self._last_completion = max(self._last_completion, record.completion)
        if record.cache_hit:
            self._cache_hits += 1
        else:
            self._batch_sum += record.batch_size
            self._n_batched += 1
        self._items.append(record)  # deque maxlen evicts the oldest in O(1)

    def summary(self) -> Dict[str, float]:
        """Same shape as :func:`summarize_records`.

        Counts, mean/max latency, QPS, cache hit rate and mean batch size
        are exact over the full history; the p50/p99 percentiles are
        computed over the retained window (they are order statistics, so a
        bounded log cannot reproduce them exactly once records are
        evicted).
        """
        if self._n == 0:
            return summarize_records([])
        latencies = np.array([r.latency for r in self._items])
        span = float(self._last_completion - self._first_arrival)
        return {
            "n_requests": float(self._n),
            "p50_latency_s": float(np.percentile(latencies, 50)),
            "p99_latency_s": float(np.percentile(latencies, 99)),
            "mean_latency_s": self._latency_sum / self._n,
            "max_latency_s": self._latency_max,
            "qps": float(self._n / span) if span > 0 else float("inf"),
            "cache_hit_rate": self._cache_hits / self._n,
            "mean_batch_size": self._batch_sum / self._n_batched if self._n_batched else 0.0,
        }


def summarize_records(records: Sequence[RequestRecord]) -> Dict[str, float]:
    """p50/p99 latency, QPS and batching statistics of a request log."""
    if not records:
        return {
            "n_requests": 0.0,
            "p50_latency_s": 0.0,
            "p99_latency_s": 0.0,
            "mean_latency_s": 0.0,
            "max_latency_s": 0.0,
            "qps": 0.0,
            "cache_hit_rate": 0.0,
            "mean_batch_size": 0.0,
        }
    latencies = np.array([r.latency for r in records])
    arrivals = np.array([r.arrival for r in records])
    completions = np.array([r.completion for r in records])
    hits = np.array([r.cache_hit for r in records])
    batch_sizes = np.array([r.batch_size for r in records if not r.cache_hit])
    span = float(completions.max() - arrivals.min())
    return {
        "n_requests": float(len(records)),
        "p50_latency_s": float(np.percentile(latencies, 50)),
        "p99_latency_s": float(np.percentile(latencies, 99)),
        "mean_latency_s": float(latencies.mean()),
        "max_latency_s": float(latencies.max()),
        "qps": float(len(records) / span) if span > 0 else float("inf"),
        "cache_hit_rate": float(hits.mean()),
        "mean_batch_size": float(batch_sizes.mean()) if batch_sizes.size else 0.0,
    }


@exactness_path
def _answer_snapshot(
    backend,
    tomb_ids: np.ndarray,
    delta_points: np.ndarray,
    delta_ids: np.ndarray,
    queries: np.ndarray,
    k: int,
    precision: str | None = None,
    stats: QueryStats | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact live-set KNN over a frozen snapshot of the service state.

    Over-fetched tree answers (tombstones filtered) fused with brute-force
    answers over the delta arrays — byte-identical to what the service
    would answer synchronously at the moment the snapshot was taken.  Pure
    function of immutable inputs, so pipelined micro-batches can run it on
    a worker thread while the service keeps mutating.  ``precision``
    selects the backend's distance-kernel tier for this call (answers are
    certified byte-identical across tiers); ``stats`` accumulates the
    traversal's :class:`~repro.kdtree.query.QueryStats` worker-locally.
    """
    n_tomb = int(tomb_ids.size)
    d_tree, i_tree = backend.kneighbors(queries, k + n_tomb, precision=precision, stats=stats)
    if n_tomb:
        dead = np.isin(i_tree, tomb_ids)
        d_tree = np.where(dead, np.inf, d_tree)
        i_tree = np.where(dead, -1, i_tree)
    if delta_ids.size:
        d_delta, i_delta = brute_force_knn(delta_points, delta_ids, queries, k)
        all_d = np.concatenate([d_tree, d_delta], axis=1)
        all_i = np.concatenate([i_tree, i_delta], axis=1)
    elif n_tomb:
        all_d, all_i = d_tree, i_tree
    else:
        return d_tree, i_tree
    all_d = np.where(all_i >= 0, all_d, np.inf)
    order = np.argsort(all_d, axis=1, kind="stable")[:, :k]
    out_d = np.take_along_axis(all_d, order, axis=1)
    out_i = np.take_along_axis(all_i, order, axis=1)
    out_i = np.where(np.isfinite(out_d), out_i, -1)
    return out_d, out_i


@exactness_path
def _pipelined_answer_step(
    backend,
    tomb_ids: np.ndarray,
    delta_points: np.ndarray,
    delta_ids: np.ndarray,
    groups: List[Tuple[int, str | None, List[int], np.ndarray]],
    clock: Clock,
) -> Tuple[Dict[int, Tuple[np.ndarray, np.ndarray]], float, Dict[str, int], int]:
    """Worker-side body of one pipelined micro-batch.

    Pure compute over the snapshot (one answer call per distinct
    ``(k, precision)`` group); the submitting thread folds the returned
    per-request answers back into results, cache and records at harvest
    time.  Per-tier query counts and recheck totals are accumulated
    worker-locally and returned for the same fold — workers never touch
    service counters directly.
    """
    started = clock.monotonic()
    answers: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    tier_counts: Dict[str, int] = {}
    rechecked = 0
    with phase("service.pipeline"):
        for k, precision, request_ids, queries in groups:
            stats = QueryStats()
            d, i = _answer_snapshot(
                backend, tomb_ids, delta_points, delta_ids, queries, k,
                precision=precision, stats=stats,
            )
            tier = precision or getattr(backend, "precision", "float64")
            tier_counts[tier] = tier_counts.get(tier, 0) + int(queries.shape[0])
            rechecked += int(stats.rechecked_candidates)
            for row, request_id in enumerate(request_ids):
                answers[request_id] = (d[row], i[row])
    return answers, clock.monotonic() - started, tier_counts, rechecked


def _check_precision(precision: str | None) -> None:
    """Reject unknown per-request precision tiers (``None`` = index tier)."""
    if precision is not None and precision not in PRECISIONS:
        raise ValueError(f"precision must be None or one of {PRECISIONS}, got {precision!r}")


@dataclass
class _Pending:
    request_id: int
    arrival: float
    k: int
    query: np.ndarray
    precision: str | None = None


@dataclass
class _BackgroundRebuild:
    """An index build running 'off to the side' of the serving path.

    The replacement backend is fully materialised at begin time (the build
    is real compute), but logically it completes at ``ready_at`` — until
    then the service keeps answering from the old backend, exactly as a
    real background worker would let it.
    """

    started_at: float
    ready_at: float
    elapsed: float
    backend: object
    snapshot_dir: Path | None


@guarded
class KNNService:
    """Online KNN front end: micro-batching, result cache, streaming updates.

    Parameters
    ----------
    backend:
        A :class:`~repro.service.backends.LocalTreeBackend` or
        :class:`~repro.service.backends.PandaBackend` (anything with
        ``kneighbors`` / ``all_points`` / ``refit`` / ``dims``).
    k:
        Default neighbours per query.
    batch_policy, rebuild_policy:
        Micro-batching and rebuild parameters (sensible defaults).
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    retention:
        Completed requests retained for inspection: both the
        :class:`RecordRing` of :class:`RequestRecord` entries and the
        fetchable per-request answers are capped at this many recent
        requests (a long-lived service no longer grows without bound).
        Aggregate latency statistics stay exact across evictions; percentiles
        are over the retained window.
    service_time:
        Optional ``batch_size -> seconds`` model replacing the measured
        wall-clock batch cost — injected by tests that need a
        deterministic logical clock.  ``None`` (default) measures real
        compute time.
    background_rebuild:
        When True, policy-triggered rebuilds run in the background: the old
        index keeps serving until the fresh build's logical completion time
        passes, then the new index hot-swaps in (the fleet layer serves
        every replica this way).  Foreground :meth:`rebuild` stays available
        either way.
    snapshot_root:
        Directory receiving one versioned snapshot (``v0001``, ``v0002``,
        ...) per background rebuild; the ``CURRENT`` pointer is promoted
        atomically at swap time.  ``None`` disables persistence.
    dispatcher:
        Opt-in micro-batch pipelining: a
        :class:`~repro.fleet.dispatch.Dispatcher` (or a spec string like
        ``"thread"`` / ``"thread:4"``).  With a concurrent dispatcher each
        dispatched micro-batch computes on the dispatcher's replica lane
        (a leaf pool, so nesting under a fleet cannot deadlock) while the
        submitting thread accumulates the next batch.  ``None`` (default)
        keeps the fully synchronous path; the ``REPRO_DISPATCHER``
        environment variable is deliberately *not* consulted here.  A
        dispatcher built from a spec string is owned (closed with the
        service); a passed-in instance stays owned by the caller.
    clock:
        Injectable monotonic clock (:class:`~repro.obs.clock.Clock`) all
        wall-time measurements read through — real ``perf_counter`` by
        default, a :class:`~repro.obs.clock.ManualClock` in deterministic
        tests.  Logical time (``at=`` arguments) is unaffected.
    events:
        Optional structured ops event sink (an
        :class:`~repro.obs.events.EventLog` or a ``.scoped(...)`` view of
        one).  When set, the service emits ``rebuild_begin`` /
        ``rebuild_swap`` / ``cache_full_clear`` events; ``None`` (default)
        emits nothing.
    """

    GUARDED_BY = {
        "backend": "_lock",
        "delta": "_lock",
        "cache": "_lock",
        "records": "_lock",
        "version": "_lock",
        "rebuilds": "_lock",
        "rebuild_seconds": "_lock",
        "_pending": "_lock",
        "_results": "_lock",
        "_result_order": "_lock",
        "_now": "_lock",
        "_server_free_at": "_lock",
        "_next_request_id": "_lock",
        "_last_arrival": "_lock",
        "_ewma_gap": "_lock",
        "_first_dirty_at": "_lock",
        "_bg": "_lock",
        "_inflight": "_lock",
        "_backend_ids": "_lock",
        "_next_auto_id": "_lock",
        "_recheck_candidates": "_lock",
        "_tier_queries": "_lock",
        "_closed": "_lock",
    }

    def __init__(
        self,
        backend,
        k: int = 5,
        batch_policy: MicroBatchPolicy | None = None,
        rebuild_policy: RebuildPolicy | None = None,
        cache_capacity: int = 4096,
        retention: int = 65536,
        service_time: Callable[[int], float] | None = None,
        background_rebuild: bool = False,
        snapshot_root: str | Path | None = None,
        dispatcher=None,
        clock: Clock | None = None,
        events=None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if backend.dims <= 0:
            raise ValueError("backend must index at least 1-dimensional points")
        self.backend = backend
        self.k = k
        self.batch_policy = batch_policy or MicroBatchPolicy()
        self.rebuild_policy = rebuild_policy or RebuildPolicy()
        self.cache = LRUCache(cache_capacity)
        self.delta = DeltaBuffer(backend.dims)
        self.records: RecordRing = RecordRing(retention)
        self.version = 0
        self.rebuilds = 0
        self.rebuild_seconds = 0.0
        self.background_rebuild = background_rebuild
        self.snapshot_root = Path(snapshot_root) if snapshot_root is not None else None
        self._service_time = service_time
        self._pending: List[_Pending] = []
        self._results: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._result_order: Deque[int] = deque()
        self._now = 0.0
        self._server_free_at = 0.0
        self._next_request_id = 0
        self._last_arrival: float | None = None
        self._ewma_gap: float | None = None
        self._first_dirty_at: float | None = None
        self._bg: _BackgroundRebuild | None = None
        # Precision-tier accounting: queries answered per tier, and float64
        # recheck distance computations spent certifying float32 answers.
        self._recheck_candidates = 0
        self._tier_queries: Dict[str, int] = {tier: 0 for tier in PRECISIONS}
        # Immutable after construction (read-only references, not state):
        # deliberately outside GUARDED_BY.
        self._clock = clock if clock is not None else MONOTONIC
        self.events = events
        self._lock = new_rlock("KNNService._lock")
        self._closed = False
        # Depth-1 micro-batch pipeline: at most one dispatched batch in
        # flight, as (batch, dispatch_start, future).
        self._inflight: Deque[Tuple[List[_Pending], float, object]] = deque()
        self._dispatcher = None
        self._owns_dispatcher = False
        if dispatcher is not None:
            # Imported lazily: repro.fleet imports this module at package
            # import time, so a top-level import would be circular.
            from repro.fleet.dispatch import Dispatcher, make_dispatcher

            self._owns_dispatcher = not isinstance(dispatcher, Dispatcher)
            self._dispatcher = make_dispatcher(dispatcher)
        self._pipelined = self._dispatcher is not None and self._dispatcher.concurrent
        self._reindex_ids()

    def close(self) -> None:
        """Release backend resources (pooled executor workers, if owned).

        Any in-flight pipelined batch is harvested (its requests complete
        normally) and an in-flight background rebuild is cancelled — its
        backend may hold the pool-shutdown responsibility (refit transfers
        it), so dropping it unclosed would leak the worker pool.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._harvest()
            self._cancel_background()
            closer = getattr(self.backend, "close", None)
            dispatcher = self._dispatcher if self._owns_dispatcher else None
        # Teardown of owned resources happens outside the lock: pool
        # shutdown can block on worker completion, and no service state is
        # touched past this point (the _closed flag already bars re-entry).
        if closer is not None:
            closer()
        if dispatcher is not None:
            dispatcher.close()

    def cancel_background(self) -> None:
        """Discard any in-flight background rebuild and keep serving the
        old index.  Safe to call when no rebuild is in flight."""
        with self._lock:
            self._cancel_background()

    def __enter__(self) -> "KNNService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current logical time (max event time seen so far)."""
        with self._lock:
            return self._now

    @property
    def n_pending(self) -> int:
        """Requests queued but not yet dispatched."""
        with self._lock:
            return len(self._pending)

    @property
    def n_live(self) -> int:
        """Points currently visible to queries (tree - tombstones + delta)."""
        with self._lock:
            return self.backend.n_points - self.delta.n_tombstones + self.delta.n_inserted

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss statistics of the result cache."""
        with self._lock:
            return self.cache.stats

    @property
    def rebuilding(self) -> bool:
        """True while a background rebuild is in flight (old index serving)."""
        with self._lock:
            return self._bg is not None

    def obs_snapshot(self) -> Dict[str, float]:
        """One consistent flat snapshot of every service-level stat.

        Read under one lock acquisition so scrape-time collectors (see
        :mod:`repro.obs.collectors`) never see a cache count from one
        rebuild generation and a version from the next.
        """
        with self._lock:
            stats = self.cache.stats
            return {
                "pending": float(len(self._pending)),
                "version": float(self.version),
                "rebuilds": float(self.rebuilds),
                "rebuild_seconds": float(self.rebuild_seconds),
                "rebuilding": 1.0 if self._bg is not None else 0.0,
                "n_live": float(
                    self.backend.n_points
                    - self.delta.n_tombstones
                    + self.delta.n_inserted
                ),
                "delta_inserts": float(self.delta.n_inserted),
                "tombstones": float(self.delta.n_tombstones),
                "cache_hits": float(stats.hits),
                "cache_misses": float(stats.misses),
                "cache_evictions": float(stats.evictions),
                "cache_full_clears": float(stats.full_clears),
                "cache_keys_dropped": float(stats.keys_dropped),
                "cache_size": float(len(self.cache)),
                "recheck_candidates": float(self._recheck_candidates),
                **{
                    f"queries_{tier}": float(self._tier_queries.get(tier, 0))
                    for tier in PRECISIONS
                },
            }

    def target_batch_size(self) -> int:
        """Current micro-batch target under the (possibly adaptive) policy."""
        policy = self.batch_policy
        with self._lock:
            gap = self._ewma_gap
        if not policy.adaptive or gap is None or gap <= 0:
            return policy.max_batch
        target = int(policy.max_delay_s / gap)
        return int(np.clip(target, policy.min_batch, policy.max_batch))

    def latency_summary(self) -> Dict[str, float]:
        """Summary statistics over every completed request.

        Counts, mean/max latency, QPS, cache hit rate and batch sizes are
        exact over the full history even after the retention ring evicted
        old records; p50/p99 are over the retained window.
        """
        with self._lock:
            return self.records.summary()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        at: float | None = None,
        precision: str | None = None,
    ) -> int:
        """Enqueue one query; returns its request id.

        ``at`` is the arrival timestamp and must be non-decreasing across
        calls; omitting it models a closed-loop caller whose request
        arrives once the server finished its previous work.  The request
        completes immediately on a cache hit, otherwise when its
        micro-batch is dispatched (size trigger, deadline flush, or an
        explicit :meth:`flush` / :meth:`drain`).

        ``precision`` overrides the index's distance-kernel tier for this
        request (``None`` serves at the index tier).  Tiers are certified
        byte-identical, so the result cache is shared across them: a hit
        stored by a float64 request may serve a float32 request and vice
        versa.
        """
        k = self.k if k is None else k
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        _check_precision(precision)
        query = np.asarray(query, dtype=np.float64).ravel()
        with self._lock:
            if query.shape[0] != self.backend.dims:
                raise ValueError(f"query has {query.shape[0]} dims, index has {self.backend.dims}")
            arrival = self._advance(at)
            self._note_arrival(arrival)
            request_id = self._next_request_id
            self._next_request_id += 1

            cached = self.cache.get(query_key(query, k))
            if cached is not None:
                d, i = cached
                self._store_result(request_id, (d.copy(), i.copy()))
                self.records.append(
                    RequestRecord(request_id, arrival, arrival, arrival, cache_hit=True, batch_size=0)
                )
                return request_id

            self._pending.append(_Pending(request_id, arrival, k, query, precision))
            if len(self._pending) >= self.target_batch_size():
                self._dispatch(arrival)
            return request_id

    def query(
        self,
        query: np.ndarray,
        k: int | None = None,
        at: float | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Interactive single query: submit, flush, return ``(distances, ids)``."""
        with self._lock:
            request_id = self.submit(query, k=k, at=at, precision=precision)
            if request_id not in self._results:
                self._dispatch(self._now)
            return self.result(request_id)

    def answer_batch(
        self,
        queries: np.ndarray,
        k: int | None = None,
        at: float | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Synchronous exact batch answers, outside the micro-batch queue.

        The scatter-gather router of the fleet layer calls this: no
        queueing, no result cache, no per-request latency accounting — just
        the exact live-set answer (tree + tombstone filter + delta fusion).
        Passing ``at`` advances the logical clock first, firing deadline
        flushes and background-rebuild swaps that were due by then.
        ``precision`` overrides the index tier for this batch (certified
        byte-identical either way).
        """
        k = self.k if k is None else k
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        _check_precision(precision)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        with self._lock:
            if queries.shape[1] != self.backend.dims:
                raise ValueError(
                    f"queries have {queries.shape[1]} dims, index has {self.backend.dims}"
                )
            if at is not None:
                self._advance(at)
            return self._answer(queries, k, precision)

    def result(self, request_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` of a completed request.

        Raises ``KeyError`` when the request is still pending or its answer
        was already evicted by the retention ring.  An answer riding the
        in-flight pipelined batch is harvested first, so "dispatched"
        always implies "fetchable".
        """
        with self._lock:
            if request_id not in self._results and self._inflight:
                self._harvest()
            if request_id not in self._results:
                raise KeyError(
                    f"request {request_id} has no result (still pending, or evicted "
                    f"by the retention ring of {self.records.capacity})"
                )
            return self._results[request_id]

    @requires_lock("_lock")
    def _store_result(self, request_id: int, value: Tuple[np.ndarray, np.ndarray]) -> None:
        """Record a completed answer, evicting the oldest beyond retention."""
        self._results[request_id] = value
        self._result_order.append(request_id)
        while len(self._result_order) > self.records.capacity:
            self._results.pop(self._result_order.popleft(), None)

    def flush(self, at: float | None = None) -> int:
        """Dispatch everything queued; returns the number dispatched."""
        with self._lock:
            now = self._advance(at)
            return self._dispatch(now)

    def drain(self, at: float | None = None) -> int:
        """:meth:`flush`, plus harvesting the pipeline: on return every
        dispatched request has completed (end-of-trace use)."""
        with self._lock:
            n = self.flush(at)
            self._harvest()
            return n

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray, ids: np.ndarray | None = None, at: float | None = None) -> np.ndarray:
        """Add points to the live set; returns their ids.

        Queued queries are flushed first (they answer against the pre-update
        set), cached entries whose k-th-distance ball can contain one of
        the new points are dropped (the rest stay exact), and a rebuild
        runs if the delta buffer crossed its policy threshold.
        Auto-assigned ids continue above the largest id ever indexed.
        """
        with self._lock:
            now = self._advance(at)
            self._dispatch(now)
            # Drain the pipeline before mutating: in-flight answers are
            # exact against the pre-update set and must land in the cache
            # *before* the invalidation below, or they would survive it
            # stale.
            self._harvest()
            points = np.atleast_2d(np.asarray(points, dtype=np.float64))
            if ids is None:
                ids = np.arange(
                    self._next_auto_id, self._next_auto_id + points.shape[0], dtype=np.int64
                )
            else:
                ids = np.asarray(ids, dtype=np.int64)
                live_backend = [
                    int(i) for i in ids
                    if int(i) in self._backend_ids and int(i) not in self.delta.tombstones
                ]
                if live_backend:
                    raise ValueError(f"ids already indexed: {live_backend[:5]}")
            self.delta.insert(points, ids)
            if ids.size:
                self._next_auto_id = max(self._next_auto_id, int(ids.max()) + 1)
            self._invalidate_for_insert(points)
            self._mark_dirty(now)
            self._maybe_rebuild(now)
            return ids

    def delete(self, ids: np.ndarray | Sequence[int], at: float | None = None) -> None:
        """Remove points by id (buffered inserts or tree-resident points).

        Tree-resident points become tombstones filtered out of every answer
        until a rebuild physically drops them; unknown ids raise
        ``KeyError``.
        """
        with self._lock:
            now = self._advance(at)
            self._dispatch(now)
            # Same ordering as insert: pipelined cache puts must precede
            # the invalidation.
            self._harvest()
            id_list = [int(i) for i in np.asarray(ids, dtype=np.int64).ravel()]
            # Validate the whole batch before mutating anything, so a bad id
            # cannot leave the delete half-applied with a stale cache.
            seen: set[int] = set()
            for point_id in id_list:
                live = self.delta.contains(point_id) or (
                    point_id in self._backend_ids and point_id not in self.delta.tombstones
                )
                if not live or point_id in seen:
                    raise KeyError(f"id {point_id} is not in the live set")
                seen.add(point_id)
            for point_id in id_list:
                if self.delta.contains(point_id):
                    self.delta.delete_buffered(point_id)
                else:
                    self.delta.add_tombstone(point_id)
            self._invalidate_for_delete(np.array(id_list, dtype=np.int64))
            self._mark_dirty(now)
            self._maybe_rebuild(now)

    def rebuild(self, at: float | None = None) -> None:
        """Fold tombstones and the delta buffer into a freshly built index.

        This is the *foreground* discipline: the single server is busy for
        the duration of the build, so queries arriving meanwhile queue
        behind it.  An in-flight background rebuild is cancelled (the
        foreground build folds a strictly newer live set).
        """
        with self._lock:
            now = self._advance(at)
            self._dispatch(now)
            self._harvest()
            self._rebuild_now(now)

    def begin_background_rebuild(self, at: float | None = None) -> float:
        """Start (or join) a background rebuild; returns its ready time.

        The replacement index is built over the live set as of now, while
        the current index keeps serving — the server is *not* blocked.
        Once the logical clock passes the returned ready time, the next
        event hot-swaps the new index in and reconciles the delta buffer
        against it (updates that arrived mid-build survive exactly).  If a
        build is already in flight its ready time is returned unchanged.
        """
        with self._lock:
            now = self._advance(at)
            return self._begin_background(now)

    def finish_rebuild(self, at: float | None = None) -> bool:
        """Advance the clock to ``at`` (default: the build's ready time) and
        swap in the background rebuild if one is due; returns True if a
        swap happened."""
        with self._lock:
            if self._bg is not None and at is None:
                at = max(self._now, self._bg.ready_at)
            before = self.version
            self._advance(at)
            return self.version != before

    def live_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(points, ids)`` of the current live set (tree minus
        tombstones plus delta buffer).

        This is the state a rebuild folds; the fleet layer also uses it to
        re-seed a dead replica from a healthy peer.
        """
        with self._lock:
            tree_points, tree_ids = self.backend.all_points()
            if self.delta.n_tombstones:
                tomb = np.fromiter(
                    self.delta.tombstones, dtype=np.int64, count=self.delta.n_tombstones
                )
                live = ~np.isin(tree_ids, tomb)
                tree_points, tree_ids = tree_points[live], tree_ids[live]
            delta_points, delta_ids = self.delta.live_arrays()
            points = np.concatenate([tree_points, delta_points], axis=0)
            ids = np.concatenate([tree_ids, delta_ids])
            return points, ids

    @requires_lock("_lock")
    def _cancel_background(self) -> None:
        """Abandon an in-flight background build.

        Its un-promoted version directory is removed (it would otherwise
        sit on disk forever, indistinguishable from crash leftovers), and
        any pooled-executor shutdown responsibility the refit handed to the
        abandoned backend is passed back to the one that keeps serving.
        """
        bg, self._bg = self._bg, None
        if bg is None:
            return
        if bg.snapshot_dir is not None:
            shutil.rmtree(bg.snapshot_dir, ignore_errors=True)
        transfer = getattr(bg.backend, "transfer_executor_ownership_to", None)
        if transfer is not None:
            transfer(self.backend)

    def _emit(self, kind: str, **fields) -> None:
        """Emit a structured ops event; a no-op without an event sink.

        The :class:`~repro.obs.events.EventLog` lock is a leaf (``emit``
        never calls out), so emitting while holding ``_lock`` cannot form
        a lock-order cycle.
        """
        if self.events is not None:
            self.events.emit(kind, **fields)

    @requires_lock("_lock")
    def _clear_cache_fully(self) -> None:
        """Whole-cache invalidation (rebuild swap), with an ops event."""
        entries = len(self.cache)
        if entries:
            self._emit("cache_full_clear", entries=entries)
        self.cache.clear()

    @requires_lock("_lock")
    def _rebuild_now(self, now: float) -> None:
        # A foreground rebuild folds the freshest live set: an in-flight
        # background build would swap an older snapshot over it, so drop it.
        self._cancel_background()
        points, ids = self.live_arrays()
        if points.shape[0] == 0:
            raise RuntimeError("cannot rebuild over an empty live set")
        self._emit("rebuild_begin", mode="foreground", points=int(points.shape[0]))
        started = self._clock.monotonic()
        self.backend = self.backend.refit(points, ids)
        elapsed = self._clock.monotonic() - started
        if self._service_time is not None:
            elapsed = float(self._service_time(points.shape[0]))
        self.rebuilds += 1
        self.rebuild_seconds += elapsed
        # The single server is busy rebuilding: queries arriving meanwhile
        # queue behind it.
        self._server_free_at = max(self._server_free_at, now) + elapsed
        self.delta.clear()
        self._clear_cache_fully()
        self.version += 1
        self._emit("rebuild_swap", mode="foreground", version=self.version)
        self._first_dirty_at = None
        self._reindex_ids()

    @requires_lock("_lock")
    def _begin_background(self, now: float) -> float:
        if self._bg is not None:
            return self._bg.ready_at
        points, ids = self.live_arrays()
        if points.shape[0] == 0:
            raise RuntimeError("cannot rebuild over an empty live set")
        started = self._clock.monotonic()
        fresh = self.backend.refit(points, ids)
        elapsed = self._clock.monotonic() - started
        if self._service_time is not None:
            elapsed = float(self._service_time(points.shape[0]))
        snapshot_dir = None
        if self.snapshot_root is not None:
            snapshot_dir = allocate_version_dir(self.snapshot_root)
            fresh.save(snapshot_dir / "index")
        self._bg = _BackgroundRebuild(
            started_at=now,
            ready_at=now + elapsed,
            elapsed=elapsed,
            backend=fresh,
            snapshot_dir=snapshot_dir,
        )
        self._emit(
            "rebuild_begin",
            mode="background",
            points=int(points.shape[0]),
            ready_at=self._bg.ready_at,
        )
        return self._bg.ready_at

    @requires_lock("_lock")
    def _complete_swap(self, now: float) -> None:
        """Atomically install the background-rebuilt index.

        The new tree holds the live set as captured at begin time; any
        update that arrived during the build window is reconciled here:

        * a new-tree point that is no longer live becomes a tombstone;
        * a buffered insert absorbed by the build (same id, bit-identical
          coordinates) leaves the buffer;
        * a buffered insert whose id is in the new tree with *different*
          coordinates (delete + re-insert during the window) stays
          authoritative in the buffer and the stale tree copy is
          tombstoned;
        * everything else buffered stays buffered.

        The live set is unchanged by the swap, so answers before and after
        are identical — which is what the fleet exactness tests assert.
        """
        bg = self._bg
        self._bg = None
        t_points, t_ids = bg.backend.all_points()
        buf_points, buf_ids = self.delta.live_arrays()
        backend_ids = np.fromiter(self._backend_ids, dtype=np.int64, count=len(self._backend_ids))
        if self.delta.n_tombstones:
            tomb = np.fromiter(
                self.delta.tombstones, dtype=np.int64, count=self.delta.n_tombstones
            )
            backend_ids = backend_ids[~np.isin(backend_ids, tomb)]
        live_now = np.concatenate([backend_ids, buf_ids])

        dead_mask = ~np.isin(t_ids, live_now)
        tombstones = set(int(i) for i in t_ids[dead_mask])

        keep_buffer = np.ones(buf_ids.shape[0], dtype=bool)
        if buf_ids.size and t_ids.size:
            order = np.argsort(t_ids, kind="stable")
            pos = np.searchsorted(t_ids[order], buf_ids)
            pos_clipped = np.minimum(pos, t_ids.size - 1)
            in_tree = t_ids[order[pos_clipped]] == buf_ids
            rows = order[pos_clipped[in_tree]]
            same = np.all(t_points[rows] == buf_points[in_tree], axis=1)
            # Absorbed verbatim -> leave the buffer; stale tree copy ->
            # keep the buffer's coordinates and kill the tree's.
            keep_buffer[np.flatnonzero(in_tree)[same]] = False
            for stale_id in buf_ids[in_tree][~same]:
                tombstones.add(int(stale_id))

        self.backend = bg.backend
        self.delta = DeltaBuffer(self.backend.dims)
        if keep_buffer.any():
            self.delta.insert(buf_points[keep_buffer], buf_ids[keep_buffer])
        self.delta.tombstones = tombstones
        self.rebuilds += 1
        self.rebuild_seconds += bg.elapsed
        self._clear_cache_fully()
        self.version += 1
        self._emit("rebuild_swap", mode="background", version=self.version)
        if bg.snapshot_dir is not None:
            promote_version(self.snapshot_root, bg.snapshot_dir)
        # Any update surviving the swap arrived after the build began; the
        # pre-build dirty timestamp would make the staleness policy fire an
        # immediate (pointless) extra rebuild.
        self._first_dirty_at = None if self.delta.n_updates == 0 else max(
            self._first_dirty_at if self._first_dirty_at is not None else bg.started_at,
            bg.started_at,
        )
        self._reindex_ids()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @requires_lock("_lock")
    def _advance(self, at: float | None) -> float:
        """Move the logical clock to ``at``, firing deadline flushes and
        staleness rebuilds that were due on the way.

        ``at=None`` models a closed-loop caller: the event happens once the
        server finished its previous work (open-loop traces always pass
        explicit arrival timestamps instead).
        """
        if at is None and self._inflight:
            # Closed-loop reads of "when is the server free" must see the
            # in-flight batch's completion, which is only known once it is
            # harvested.
            self._harvest()
        now = max(self._now, self._server_free_at) if at is None else float(at)
        if now < self._now:
            raise ValueError(f"time went backwards: {now} < {self._now}")
        policy = self.batch_policy
        while self._pending:
            deadline = self._pending[0].arrival + policy.max_delay_s
            if deadline > now:
                break
            self._dispatch(deadline)
        if self._bg is not None and now >= self._bg.ready_at:
            # The background build finished somewhere in (then, now]: swap
            # it in.  The live set is unchanged by the swap, so ordering
            # against the deadline flushes above is answer-invisible.
            self._complete_swap(now)
        if (
            self._first_dirty_at is not None
            and now - self._first_dirty_at >= self.rebuild_policy.max_staleness_s
            and self.n_live > 0
        ):
            if self.background_rebuild:
                self._begin_background(now)
            else:
                self._dispatch(now)
                self._rebuild_now(now)
        self._now = max(self._now, now)
        return now

    @requires_lock("_lock")
    def _note_arrival(self, arrival: float) -> None:
        if self._last_arrival is not None:
            gap = max(arrival - self._last_arrival, 1e-9)
            alpha = self.batch_policy.ewma_alpha
            self._ewma_gap = gap if self._ewma_gap is None else (1 - alpha) * self._ewma_gap + alpha * gap
        self._last_arrival = arrival

    @requires_lock("_lock")
    def _dispatch(self, flush_time: float) -> int:
        """Dispatch every queued request that arrived by ``flush_time``."""
        split = 0
        while split < len(self._pending) and self._pending[split].arrival <= flush_time:
            split += 1
        batch = self._pending[:split]
        if not batch:
            return 0
        self._pending = self._pending[split:]
        if self._pipelined:
            return self._dispatch_pipelined(batch, flush_time)

        dispatch_start = max(flush_time, self._server_free_at)
        started = self._clock.monotonic()
        answers: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        with phase("service.answer"):
            for k, prec_key in sorted({(r.k, r.precision or "") for r in batch}):
                precision = prec_key or None
                group = [r for r in batch if r.k == k and (r.precision or "") == prec_key]
                queries = np.stack([r.query for r in group])
                d, i = self._answer(queries, k, precision)
                for row, r in enumerate(group):
                    answers[r.request_id] = (d[row], i[row])
        elapsed = self._clock.monotonic() - started
        if self._service_time is not None:
            elapsed = float(self._service_time(len(batch)))
        self._complete_batch(batch, flush_time, dispatch_start, answers, elapsed)
        return len(batch)

    @requires_lock("_lock")
    def _dispatch_pipelined(self, batch: List[_Pending], flush_time: float) -> int:
        """Submit one micro-batch to the dispatcher's replica lane.

        Depth-one pipeline: the previous in-flight batch is harvested first
        (so ``_server_free_at`` is final when this dispatch is stamped),
        then this batch's compute runs on a worker over a frozen snapshot
        while the caller goes back to accumulating the next batch.
        """
        from repro.fleet.dispatch import ShardCall

        self._harvest()
        dispatch_start = max(flush_time, self._server_free_at)
        self._now = max(self._now, flush_time)
        groups: List[Tuple[int, str | None, List[int], np.ndarray]] = []
        for k, prec_key in sorted({(r.k, r.precision or "") for r in batch}):
            group = [r for r in batch if r.k == k and (r.precision or "") == prec_key]
            groups.append(
                (
                    k,
                    prec_key or None,
                    [r.request_id for r in group],
                    np.stack([r.query for r in group]),
                )
            )
        # The snapshot is safe by immutability: the backend is only ever
        # replaced (never mutated), the tombstone set is materialised here,
        # and the delta's dense arrays are rebuilt (not written) on change.
        n_tomb = self.delta.n_tombstones
        tomb = (
            np.fromiter(self.delta.tombstones, dtype=np.int64, count=n_tomb)
            if n_tomb
            else np.empty(0, dtype=np.int64)
        )
        delta_points, delta_ids = self.delta.live_arrays()
        fut = self._dispatcher.submit_hedge(
            ShardCall(
                0,
                _pipelined_answer_step,
                (self.backend, tomb, delta_points, delta_ids, groups, self._clock),
            )
        )
        self._inflight.append((batch, dispatch_start, fut))
        return len(batch)

    @exactness_path
    @requires_lock("_lock")
    def _harvest(self) -> None:
        """Fold the in-flight pipelined batch (if any) back into the service.

        Runs in the submitting thread under the service lock — results,
        cache, records and the logical clock are only ever touched here and
        in the synchronous path, never by workers.
        """
        with phase("service.harvest"):
            while self._inflight:
                batch, dispatch_start, fut = self._inflight.popleft()
                answers, elapsed, tier_counts, rechecked = fut.result()
                if self._service_time is not None:
                    elapsed = float(self._service_time(len(batch)))
                # Worker-local tier/recheck accounting folds back here, under
                # the lock, in the submitting thread — same discipline as the
                # clock and cache fold below.
                for tier, count in tier_counts.items():
                    self._tier_queries[tier] = self._tier_queries.get(tier, 0) + count
                self._recheck_candidates += rechecked
                # The clock already advanced to the flush time at submit;
                # passing `_now` keeps the max() a no-op.
                self._complete_batch(batch, self._now, dispatch_start, answers, elapsed)

    @exactness_path
    @requires_lock("_lock")
    def _complete_batch(
        self,
        batch: List[_Pending],
        flush_time: float,
        dispatch_start: float,
        answers: Dict[int, Tuple[np.ndarray, np.ndarray]],
        elapsed: float,
    ) -> None:
        """Shared tail of both dispatch paths: clock, results, cache, records."""
        completion = dispatch_start + elapsed
        self._server_free_at = completion
        self._now = max(self._now, flush_time)
        for r in batch:
            d_row, i_row = answers[r.request_id]
            self._store_result(r.request_id, (d_row, i_row))
            # The cache owns its copies: a caller mutating a returned answer
            # in place must not poison later hits (hits copy on read too).
            self.cache.put(query_key(r.query, r.k), (d_row.copy(), i_row.copy()))
            self.records.append(
                RequestRecord(
                    r.request_id, r.arrival, dispatch_start, completion,
                    cache_hit=False, batch_size=len(batch),
                )
            )

    @exactness_path
    @requires_lock("_lock")
    def _answer(
        self, queries: np.ndarray, k: int, precision: str | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact live-set KNN: over-fetched tree answers (tombstones
        filtered) fused with the delta buffer's brute-force answers
        (:func:`_answer_snapshot` over the current state).  Tier and
        recheck counters fold immediately — this path already runs in the
        submitting thread under the lock."""
        n_tomb = self.delta.n_tombstones
        tomb = (
            np.fromiter(self.delta.tombstones, dtype=np.int64, count=n_tomb)
            if n_tomb
            else np.empty(0, dtype=np.int64)
        )
        delta_points, delta_ids = self.delta.live_arrays()
        stats = QueryStats()
        out = _answer_snapshot(
            self.backend, tomb, delta_points, delta_ids, queries, k,
            precision=precision, stats=stats,
        )
        tier = precision or getattr(self.backend, "precision", "float64")
        self._tier_queries[tier] = self._tier_queries.get(tier, 0) + int(queries.shape[0])
        self._recheck_candidates += int(stats.rechecked_candidates)
        return out

    @requires_lock("_lock")
    def _mark_dirty(self, now: float) -> None:
        if self._first_dirty_at is None:
            self._first_dirty_at = now

    @requires_lock("_lock")
    def _invalidate_for_insert(self, points: np.ndarray) -> int:
        """Drop only cached entries an insert can change.

        A cached answer ``(d, i)`` for query q can change only if some new
        point lands inside (or exactly on) its k-th-distance ball — i.e.
        ``min_p |q - p| <= d[k-1]``.  Underfull entries (fewer than k live
        neighbours found) have an unbounded ball: ``d[k-1]`` is ``inf`` and
        the comparison drops them for any insert, as it must.
        """
        if len(self.cache) == 0 or points.shape[0] == 0:
            return 0
        items = self.cache.items()
        keys = [key for key, _ in items]
        queries = np.stack([np.frombuffer(key[1], dtype=np.float64) for key in keys])
        balls = np.array([value[0][-1] for _, value in items])
        # Chunk the inserted points to bound the (cached, chunk, dims)
        # difference tensor — a bulk insert against a warm cache would
        # otherwise materialise a multi-hundred-MB cube.
        dims = queries.shape[1]
        min_d2 = np.full(queries.shape[0], np.inf)
        chunk = max(1, int(5e6 // max(queries.shape[0] * max(dims, 1), 1)))
        for lo in range(0, points.shape[0], chunk):
            diff = queries[:, None, :] - points[None, lo : lo + chunk, :]
            d2 = np.einsum("qpd,qpd->qp", diff, diff).min(axis=1)
            np.minimum(min_d2, d2, out=min_d2)
        ball_sq = np.where(np.isfinite(balls), balls * balls, np.inf)
        hit = np.flatnonzero(min_d2 <= ball_sq)
        if hit.size:
            self.cache.drop([keys[j] for j in hit])
        return int(hit.size)

    @requires_lock("_lock")
    def _invalidate_for_delete(self, dead_ids: np.ndarray) -> int:
        """Drop only cached entries a delete can change.

        A delete changes a cached answer only if it removes one of the
        answer's own ids: any live point strictly inside the k-th-distance
        ball is already listed, and an underfull answer lists *every* live
        in-range point — so id membership is a complete test.
        """
        if len(self.cache) == 0 or dead_ids.size == 0:
            return 0
        # A plain set test per entry beats one np.isin ufunc dispatch per
        # entry: delete batches are small and cached id rows are length k.
        dead = set(int(x) for x in dead_ids)
        doomed = [key for key, (_, i) in self.cache.items() if not dead.isdisjoint(i.tolist())]
        if doomed:
            self.cache.drop(doomed)
        return len(doomed)

    @requires_lock("_lock")
    def _maybe_rebuild(self, now: float) -> None:
        policy = self.rebuild_policy
        if self.n_live == 0:
            # Nothing to build a tree over; stay on the buffered state until
            # an insert makes the live set non-empty again.
            return
        if (
            self.delta.n_inserted >= policy.max_inserts
            or self.delta.n_tombstones >= policy.max_tombstones
        ):
            if self.background_rebuild:
                self._begin_background(now)
            else:
                self._rebuild_now(now)

    @requires_lock("_lock")
    def _reindex_ids(self) -> None:
        _, ids = self.backend.all_points()
        self._backend_ids = frozenset(int(i) for i in ids)
        # Auto ids only ever move forward: an id freed by a delete + rebuild
        # must not be reassigned to a different point.
        floor = int(ids.max()) + 1 if ids.size else 0
        self._next_auto_id = max(getattr(self, "_next_auto_id", 0), floor)
