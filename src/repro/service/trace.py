"""Open-loop arrival traces for the serving benchmark and tests.

A trace is ``(arrival_times, queries)``: monotonically non-decreasing
arrival timestamps (seconds) and one query row per arrival.  Traces are
*open loop* — arrivals do not wait for completions, so queueing delay shows
up honestly in the measured latencies when the service falls behind.

Three arrival processes cover the serving regimes the service's policies
target:

* :func:`uniform_trace` — Poisson arrivals at a constant rate (the steady
  state the adaptive batch sizing converges on);
* :func:`bursty_trace` — on/off periods alternating a high burst rate with
  a quiet base rate (stresses the deadline flush and queue drain);
* :func:`hotkey_trace` — a Zipf-skewed key popularity over a small query
  pool (exercises the LRU result cache).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _sample_queries(pool: np.ndarray, n: int, rng: np.random.Generator) -> np.ndarray:
    idx = rng.integers(0, pool.shape[0], size=n)
    return pool[idx]


def uniform_trace(
    n: int,
    rate: float,
    pool: np.ndarray,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Poisson arrivals at ``rate`` requests/second, queries drawn from ``pool``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    times = np.cumsum(gaps)
    return times, _sample_queries(pool, n, rng)


def bursty_trace(
    n: int,
    base_rate: float,
    burst_rate: float,
    pool: np.ndarray,
    burst_every: int = 200,
    burst_len: int = 100,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """On/off arrivals: every ``burst_every`` requests, ``burst_len`` of them
    arrive at ``burst_rate`` instead of ``base_rate``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if base_rate <= 0 or burst_rate <= 0:
        raise ValueError("rates must be positive")
    if burst_every <= 0 or burst_len <= 0:
        raise ValueError("burst shape parameters must be positive")
    rng = np.random.default_rng(seed)
    in_burst = (np.arange(n) % burst_every) < burst_len
    rates = np.where(in_burst, burst_rate, base_rate)
    gaps = rng.exponential(1.0, size=n) / rates
    times = np.cumsum(gaps)
    return times, _sample_queries(pool, n, rng)


def hotkey_trace(
    n: int,
    rate: float,
    pool: np.ndarray,
    n_hot: int = 32,
    hot_fraction: float = 0.9,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Skewed popularity: ``hot_fraction`` of requests hit ``n_hot`` fixed
    pool rows (Zipf-weighted), the rest draw uniformly from the whole pool.

    Repeated identical queries are what an LRU result cache absorbs, so
    this trace is the cache's showcase (and its exactness stressor: the
    service must still return exact answers for the cold tail).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    n_hot = min(n_hot, pool.shape[0])
    if n_hot <= 0:
        raise ValueError("pool must be non-empty")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    times = np.cumsum(gaps)
    # Zipf weights over the hot set: popularity ~ 1/rank.
    weights = 1.0 / np.arange(1, n_hot + 1)
    weights /= weights.sum()
    hot_rows = rng.choice(pool.shape[0], size=n_hot, replace=False)
    is_hot = rng.random(n) < hot_fraction
    picks = np.where(
        is_hot,
        hot_rows[rng.choice(n_hot, size=n, p=weights)],
        rng.integers(0, pool.shape[0], size=n),
    )
    return times, pool[picks]
