"""Online KNN serving on top of the PANDA index.

The batch pipeline of the paper builds an index once and answers one big
query set; this package turns it into a *service*:

* :mod:`~repro.service.backends` — the indices the service can front: one
  local kd-tree or a distributed :class:`~repro.core.panda.PandaKNN`, both
  behind the same four-method protocol;
* :mod:`~repro.service.service` — :class:`~repro.service.service.KNNService`
  itself: adaptive size-or-deadline micro-batching through the vectorised
  batch query path, an LRU result cache with incremental invalidation,
  per-request latency accounting, and streaming inserts/deletes with a
  policy-driven rebuild — foreground, or background with an atomic
  hot-swap and versioned on-disk snapshots;
* :mod:`~repro.service.delta` — the brute-force delta buffer and tombstone
  set that make streaming updates exact between rebuilds;
* :mod:`~repro.service.cache` — the LRU result cache;
* :mod:`~repro.service.trace` — open-loop arrival traces (uniform, bursty,
  hot-key) for the throughput benchmark and the exactness tests.

Snapshots (:meth:`repro.kdtree.tree.KDTree.save`,
:meth:`repro.core.panda.PandaKNN.snapshot`) warm-start either backend, so a
service can come up without rebuilding its index.
"""

from repro.service.backends import LocalTreeBackend, PandaBackend
from repro.service.cache import CacheStats, LRUCache
from repro.service.delta import DeltaBuffer
from repro.service.service import (
    KNNService,
    MicroBatchPolicy,
    RebuildPolicy,
    RecordRing,
    RequestRecord,
    summarize_records,
)
from repro.service.trace import bursty_trace, hotkey_trace, uniform_trace

__all__ = [
    "KNNService",
    "MicroBatchPolicy",
    "RebuildPolicy",
    "RecordRing",
    "RequestRecord",
    "summarize_records",
    "LocalTreeBackend",
    "PandaBackend",
    "DeltaBuffer",
    "LRUCache",
    "CacheStats",
    "uniform_trace",
    "bursty_trace",
    "hotkey_trace",
]
