"""Analytic performance model turning event counters into modeled time.

The simulation executes PANDA's algorithms exactly (same traversals, same
messages) but on one host, so wall-clock time is meaningless for reproducing
the paper's cluster-scale figures.  Instead the cost model charges each
counter class to the hardware resource the paper identifies as its
bottleneck:

* leaf-bucket distance computations — SIMD floating point, capped by memory
  bandwidth for streaming through the bucket;
* kd-tree node traversal — dependent memory latency (the paper: "the code is
  significantly limited by memory accesses"), partially hidden by SMT;
* histogram / median sampling — scalar + SIMD scan throughput;
* point redistribution and SIMD packing — memory bandwidth streams;
* communication — alpha-beta model over the interconnect, with optional
  compute/communication overlap for the software-pipelined query phase.

Each bulk-synchronous phase finishes when its slowest rank finishes, so the
phase time is the per-rank maximum; the run time is the sum over phases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import MetricsRegistry, PhaseCounters

#: Floating point operations per point-dimension of a squared-distance
#: evaluation (subtract, multiply, accumulate).
FLOPS_PER_DISTANCE_DIM = 3.0

#: Operations charged per reported histogram comparison.  The sub-interval
#: scan is branch-free and fully SIMD-amortised (see kdtree.median), so each
#: reported comparison costs well under a cycle on average.
HISTOGRAM_OPS_PER_ELEMENT = 1.0


@dataclass
class PhaseTime:
    """Modeled time of one phase of the run."""

    phase: str
    compute_s: float
    comm_s: float
    overlap: bool = False
    per_rank_compute_s: List[float] = field(default_factory=list)
    per_rank_comm_s: List[float] = field(default_factory=list)

    @property
    def nonoverlapped_comm_s(self) -> float:
        """Communication time not hidden behind computation."""
        if self.overlap:
            return max(0.0, self.comm_s - self.compute_s)
        return self.comm_s

    @property
    def total_s(self) -> float:
        """Phase wall-clock: compute plus exposed communication."""
        return self.compute_s + self.nonoverlapped_comm_s

    def as_dict(self) -> Dict[str, float]:
        """Summary dictionary used by reports."""
        return {
            "phase": self.phase,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "nonoverlapped_comm_s": self.nonoverlapped_comm_s,
            "total_s": self.total_s,
        }


@dataclass
class TimeBreakdown:
    """Per-phase modeled times plus the run total."""

    phases: List[PhaseTime]

    @property
    def total_s(self) -> float:
        """Total modeled wall-clock over all phases."""
        return sum(p.total_s for p in self.phases)

    def phase(self, name: str) -> PhaseTime:
        """Look up a phase by name."""
        for p in self.phases:
            if p.phase == name:
                return p
        raise KeyError(f"phase {name!r} not present; have {[p.phase for p in self.phases]}")

    def fractions(self) -> Dict[str, float]:
        """Fraction of total time spent in each phase (paper's Fig. 5b/5c)."""
        total = self.total_s
        if total <= 0.0:
            return {p.phase: 0.0 for p in self.phases}
        return {p.phase: p.total_s / total for p in self.phases}

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Nested dictionary keyed by phase name."""
        return {p.phase: p.as_dict() for p in self.phases}


class CostModel:
    """Convert :class:`MetricsRegistry` counters into modeled time.

    Parameters
    ----------
    machine:
        Node/interconnect description.
    threads_per_rank:
        Modeled worker threads per node.
    overlap_phases:
        Phase names whose communication is software-pipelined with
        computation (the paper overlaps communication in the query phase and
        reports only the *non-overlapped* remainder in Fig. 5c).
    parallel_efficiency:
        Fraction of ideal thread speedup actually achieved inside a node;
        models the load imbalance + serial fraction the paper observes
        (17-20x on 24 cores for construction).
    """

    def __init__(
        self,
        machine: MachineSpec,
        threads_per_rank: int | None = None,
        overlap_phases: Iterable[str] = (),
        parallel_efficiency: float = 0.85,
    ) -> None:
        self.machine = machine
        self.threads_per_rank = machine.cores_per_node if threads_per_rank is None else threads_per_rank
        if self.threads_per_rank <= 0:
            raise ValueError(f"threads_per_rank must be positive, got {self.threads_per_rank}")
        self.overlap_phases = set(overlap_phases)
        if not 0.0 < parallel_efficiency <= 1.0:
            raise ValueError(f"parallel_efficiency must be in (0, 1], got {parallel_efficiency}")
        self.parallel_efficiency = parallel_efficiency

    # ------------------------------------------------------------------
    # Per-counter models
    # ------------------------------------------------------------------
    def _effective_threads(self, threads: int | None = None) -> float:
        threads = threads if threads is not None else self.threads_per_rank
        threads = min(threads, self.machine.total_threads())
        physical = min(threads, self.machine.cores_per_node)
        # Amdahl-flavoured efficiency: 1 thread is exact, more threads pay
        # the serial/imbalance tax.
        if physical <= 1:
            return float(max(threads, 1))
        return 1.0 + (physical - 1) * self.parallel_efficiency

    def compute_time(self, counters: PhaseCounters, threads: int | None = None) -> float:
        """Modeled on-node computation time for one rank's phase counters."""
        threads = threads if threads is not None else self.threads_per_rank
        eff_threads = self._effective_threads(threads)
        machine = self.machine

        # Leaf distance computations: SIMD flops vs. memory streaming.
        dims = max(counters.distance_dims, 1)
        flops = counters.distance_computations * dims * FLOPS_PER_DISTANCE_DIM
        flop_rate = machine.peak_flops(threads) * (eff_threads / max(min(threads, machine.cores_per_node), 1))
        flop_rate = max(flop_rate, machine.frequency_hz)  # never slower than 1 scalar op/cycle
        dist_bytes = counters.distance_computations * dims * 8
        t_distance = max(flops / flop_rate, dist_bytes / machine.memory_bandwidth_bytes_per_s)

        # Tree traversal: one dependent memory access per visited node,
        # spread over the threads that process independent queries/subtrees.
        latency = machine.effective_memory_latency(threads)
        t_traverse = counters.nodes_visited * latency / eff_threads

        # Histogram / binning scans: SIMD-scanned, so charge the comparison
        # count at the full SIMD comparison rate.
        scan_rate = machine.scalar_rate(threads) * machine.simd_width_doubles
        scan_rate *= eff_threads / max(min(threads, machine.cores_per_node), 1)
        t_hist = counters.histogram_ops * HISTOGRAM_OPS_PER_ELEMENT / max(scan_rate, 1.0)

        # Streaming data movement (partitioning, SIMD packing, shuffles).
        t_stream = counters.bytes_streamed / machine.memory_bandwidth_bytes_per_s
        t_stream += counters.elements_moved * 8 / machine.memory_bandwidth_bytes_per_s

        # Residual scalar bookkeeping (heap pushes, comparisons, ...).
        t_scalar = counters.scalar_ops / max(machine.scalar_rate(threads) * eff_threads
                                             / max(min(threads, machine.cores_per_node), 1), 1.0)

        return t_distance + t_traverse + t_hist + t_stream + t_scalar

    def comm_time(self, counters: PhaseCounters, n_ranks: int = 2) -> float:
        """Modeled network time for one rank's phase counters."""
        net = self.machine.interconnect
        send = net.message_time(counters.bytes_sent, counters.messages_sent)
        recv = net.message_time(counters.bytes_received, counters.messages_received)
        sync = counters.synchronizations * net.latency_s * max(math.log2(max(n_ranks, 2)), 1.0)
        # Injection bandwidth is shared between send and receive directions.
        return max(send, recv) + sync

    # ------------------------------------------------------------------
    # Whole-run evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        metrics: MetricsRegistry,
        phases: Sequence[str] | None = None,
        threads: int | None = None,
    ) -> TimeBreakdown:
        """Model the time of ``phases`` (default: all recorded phases)."""
        if phases is None:
            phases = [p for p in metrics.phase_order]
            if not phases:
                phases = [MetricsRegistry.DEFAULT_PHASE]
        results: List[PhaseTime] = []
        n_ranks = metrics.n_ranks
        for phase in phases:
            per_rank_compute: List[float] = []
            per_rank_comm: List[float] = []
            for rank in range(n_ranks):
                counters = metrics.rank(rank).phases.get(phase, PhaseCounters())
                per_rank_compute.append(self.compute_time(counters, threads))
                per_rank_comm.append(self.comm_time(counters, n_ranks))
            results.append(
                PhaseTime(
                    phase=phase,
                    compute_s=max(per_rank_compute) if per_rank_compute else 0.0,
                    comm_s=max(per_rank_comm) if per_rank_comm else 0.0,
                    overlap=phase in self.overlap_phases,
                    per_rank_compute_s=per_rank_compute,
                    per_rank_comm_s=per_rank_comm,
                )
            )
        return TimeBreakdown(phases=results)

    def evaluate_phase_groups(
        self,
        metrics: MetricsRegistry,
        groups: Mapping[str, Sequence[str]],
        threads: int | None = None,
    ) -> Dict[str, float]:
        """Model time for named groups of phases (e.g. construction vs query)."""
        out: Dict[str, float] = {}
        for name, phase_list in groups.items():
            breakdown = self.evaluate(metrics, phases=list(phase_list), threads=threads)
            out[name] = breakdown.total_s
        return out
