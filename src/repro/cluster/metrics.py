"""Per-rank, per-phase accounting of computation and communication.

Every operation the simulated PANDA implementation performs is charged to a
*phase* (e.g. ``"global_tree"``, ``"redistribute"``, ``"local_knn"``) on a
specific rank.  The cost model later converts these counters into modeled
time; the benchmark harness also reports several of them directly (message
counts, remote-query fan-out, tree-node traversals) because they are exact
properties of the algorithm rather than of the hardware.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class PhaseCounters:
    """Raw event counters accumulated by one rank inside one phase."""

    #: Number of point-to-point or collective fragments sent.
    messages_sent: int = 0
    #: Number of fragments received.
    messages_received: int = 0
    #: Payload bytes sent.
    bytes_sent: int = 0
    #: Payload bytes received.
    bytes_received: int = 0
    #: Query-to-point distance evaluations (each costs ~2*dims flops).
    distance_computations: int = 0
    #: Dimensionality charged for the distance computations.
    distance_dims: int = 0
    #: kd-tree nodes visited during traversal (pointer-chasing, latency bound).
    nodes_visited: int = 0
    #: Elements scanned while histogramming / binning for median estimation.
    histogram_ops: int = 0
    #: Elements moved while partitioning / shuffling points.
    elements_moved: int = 0
    #: Bytes touched by streaming kernels (partitioning, packing).
    bytes_streamed: int = 0
    #: Generic scalar work units (comparisons, heap operations, bookkeeping).
    scalar_ops: int = 0
    #: Number of barrier-style synchronisations.
    synchronizations: int = 0

    def merge(self, other: "PhaseCounters") -> None:
        """Accumulate ``other`` into this counter set in place."""
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.distance_computations += other.distance_computations
        self.distance_dims = max(self.distance_dims, other.distance_dims)
        self.nodes_visited += other.nodes_visited
        self.histogram_ops += other.histogram_ops
        self.elements_moved += other.elements_moved
        self.bytes_streamed += other.bytes_streamed
        self.scalar_ops += other.scalar_ops
        self.synchronizations += other.synchronizations

    def copy(self) -> "PhaseCounters":
        """Return an independent copy."""
        fresh = PhaseCounters()
        fresh.merge(self)
        fresh.distance_dims = self.distance_dims
        return fresh

    def total_bytes(self) -> int:
        """Total payload bytes moved through the network by this rank."""
        return self.bytes_sent + self.bytes_received

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dictionary (for reports/tests)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "distance_computations": self.distance_computations,
            "distance_dims": self.distance_dims,
            "nodes_visited": self.nodes_visited,
            "histogram_ops": self.histogram_ops,
            "elements_moved": self.elements_moved,
            "bytes_streamed": self.bytes_streamed,
            "scalar_ops": self.scalar_ops,
            "synchronizations": self.synchronizations,
        }


@dataclass
class RankCounters:
    """All phase counters belonging to a single rank."""

    rank: int
    phases: Dict[str, PhaseCounters] = field(default_factory=dict)

    def phase(self, name: str) -> PhaseCounters:
        """Return (creating if necessary) the counters for ``name``."""
        if name not in self.phases:
            self.phases[name] = PhaseCounters()
        return self.phases[name]

    def total(self) -> PhaseCounters:
        """Aggregate counters across all phases of this rank."""
        agg = PhaseCounters()
        for counters in self.phases.values():
            agg.merge(counters)
        return agg


class MetricsRegistry:
    """Registry of counters for every rank of a simulated cluster.

    The registry also keeps the *current phase* so instrumented code does not
    need to thread a phase name through every call: the communicator and the
    kernels charge their events to ``registry.current_phase``.
    """

    DEFAULT_PHASE = "unattributed"

    def __init__(self, n_ranks: int) -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self._ranks: List[RankCounters] = [RankCounters(rank=r) for r in range(n_ranks)]
        self._phase_stack: List[str] = [self.DEFAULT_PHASE]
        self._phase_order: List[str] = []

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of ranks tracked by this registry."""
        return len(self._ranks)

    @property
    def current_phase(self) -> str:
        """Name of the phase currently being charged."""
        return self._phase_stack[-1]

    @property
    def phase_order(self) -> List[str]:
        """Phases in first-entered order (used for ordered breakdowns)."""
        return list(self._phase_order)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager charging enclosed events to phase ``name``."""
        if name not in self._phase_order:
            self._phase_order.append(name)
        self._phase_stack.append(name)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def rank(self, rank: int) -> RankCounters:
        """Counters of rank ``rank``."""
        return self._ranks[rank]

    def for_phase(self, rank: int, phase: str | None = None) -> PhaseCounters:
        """Counters of ``rank`` for ``phase`` (default: current phase)."""
        return self._ranks[rank].phase(phase or self.current_phase)

    def all_ranks(self) -> List[RankCounters]:
        """Counters of every rank."""
        return list(self._ranks)

    def snapshot(self) -> Dict[tuple, Dict[str, int]]:
        """Plain ``{(rank, phase): counters}`` dict of the whole registry.

        The canonical projection for comparing two runs' accounting (e.g.
        the executor A/B identity assertions).
        """
        return {
            (rank_counters.rank, phase): counters.as_dict()
            for rank_counters in self._ranks
            for phase, counters in rank_counters.phases.items()
        }

    def phase_total(self, phase: str) -> PhaseCounters:
        """Counters of ``phase`` aggregated over all ranks."""
        agg = PhaseCounters()
        for rank_counters in self._ranks:
            if phase in rank_counters.phases:
                agg.merge(rank_counters.phases[phase])
        return agg

    def phase_max(self, phase: str) -> PhaseCounters:
        """Element-wise maximum of ``phase`` counters over ranks.

        Bulk-synchronous phases complete when the slowest rank finishes, so
        the cost model uses the per-rank maximum rather than the sum.
        """
        worst = PhaseCounters()
        for rank_counters in self._ranks:
            if phase not in rank_counters.phases:
                continue
            counters = rank_counters.phases[phase]
            for name, value in counters.as_dict().items():
                if value > getattr(worst, name):
                    setattr(worst, name, value)
        return worst

    def grand_total(self) -> PhaseCounters:
        """Counters aggregated over all ranks and phases."""
        agg = PhaseCounters()
        for rank_counters in self._ranks:
            agg.merge(rank_counters.total())
        return agg

    def reset(self) -> None:
        """Clear every counter while keeping the rank count."""
        self._ranks = [RankCounters(rank=r) for r in range(self.n_ranks)]
        self._phase_stack = [self.DEFAULT_PHASE]
        self._phase_order = []
