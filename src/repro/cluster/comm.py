"""MPI-like communication layer for the simulated cluster.

The communicator implements the collectives PANDA relies on (broadcast,
allgather, all-to-all with variable counts, reductions and point-to-point
sends) in a bulk-synchronous style: each call takes per-rank inputs, returns
per-rank outputs, and charges every transferred byte and message to the
:class:`~repro.cluster.metrics.MetricsRegistry` under the currently active
phase.  Sub-communicators over rank groups support the recursive group
splits used during global kd-tree construction.

By default data is moved by reference (no copies are made for the "network"
hop); the accounting is therefore exact while the simulation stays fast.  A
:class:`MessageTransport` makes the hop pluggable: :class:`PickleTransport`
round-trips every inter-rank payload through a pickled message frame — the
same self-contained frame format the process rank executor ships over its
queues — so code can be verified against real serialisation boundaries
(receivers get independent copies, exactly as across processes).  Byte and
message accounting is computed from the original payload either way, so
metrics are identical across transports.
"""

from __future__ import annotations

import math
import pickle
import sys
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.cluster.metrics import MetricsRegistry


class MessageTransport:
    """Policy for moving one message frame between two ranks."""

    name = "abstract"

    def transfer(self, payload: Any) -> Any:
        """Return what the destination rank receives for ``payload``."""
        raise NotImplementedError


class ReferenceTransport(MessageTransport):
    """Zero-copy in-process hop: the destination sees the sender's object."""

    name = "reference"

    def transfer(self, payload: Any) -> Any:
        return payload


class PickleTransport(MessageTransport):
    """Process-boundary semantics: each hop round-trips a pickled frame.

    Receivers get independent deserialised copies, so aliasing bugs that a
    real multiprocessing deployment would expose show up under the simulated
    communicator too.
    """

    name = "pickle"

    def transfer(self, payload: Any) -> Any:
        return pickle.loads(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


_REFERENCE_TRANSPORT = ReferenceTransport()


def payload_nbytes(obj: Any) -> int:
    """Best-effort payload size in bytes of an object crossing the network.

    NumPy arrays report their buffer size; sequences are summed recursively;
    everything else falls back to ``sys.getsizeof``.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (int, float, np.integer, np.floating)):
        return 8
    return int(sys.getsizeof(obj))


class Communicator:
    """Bulk-synchronous communicator over a group of ranks.

    Parameters
    ----------
    metrics:
        Registry receiving the traffic accounting.  Accounting is always
        charged against *global* rank ids so sub-communicators and the world
        communicator share one ledger.
    group:
        Global rank ids participating in this communicator.  ``None`` means
        all ranks of the registry (the world communicator).
    transport:
        How inter-rank payloads cross the "network" hop (default:
        by-reference; see :class:`MessageTransport`).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        group: Sequence[int] | None = None,
        transport: MessageTransport | None = None,
    ) -> None:
        self._metrics = metrics
        self._transport = transport or _REFERENCE_TRANSPORT
        if group is None:
            group = list(range(metrics.n_ranks))
        group = list(group)
        if len(group) == 0:
            raise ValueError("communicator group must contain at least one rank")
        if len(set(group)) != len(group):
            raise ValueError(f"communicator group contains duplicate ranks: {group}")
        for rank in group:
            if not 0 <= rank < metrics.n_ranks:
                raise ValueError(f"rank {rank} outside registry of size {metrics.n_ranks}")
        self._group = group

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self._group)

    @property
    def group(self) -> List[int]:
        """Global rank ids of the group, in communicator order."""
        return list(self._group)

    @property
    def metrics(self) -> MetricsRegistry:
        """The shared metrics registry."""
        return self._metrics

    @property
    def transport(self) -> MessageTransport:
        """The transport payloads cross the network hop through."""
        return self._transport

    def global_rank(self, local_rank: int) -> int:
        """Translate a communicator-local rank to a global rank id."""
        return self._group[local_rank]

    def split(self, color_of: Callable[[int], int]) -> Dict[int, "Communicator"]:
        """Split into sub-communicators by color (like ``MPI_Comm_split``).

        ``color_of`` maps a *local* rank index to an integer color; ranks with
        equal colors end up in the same sub-communicator, preserving order.
        """
        buckets: Dict[int, List[int]] = {}
        for local in range(self.size):
            buckets.setdefault(color_of(local), []).append(self._group[local])
        return {
            color: Communicator(self._metrics, ranks, self._transport)
            for color, ranks in sorted(buckets.items())
        }

    def subgroup(self, local_ranks: Sequence[int]) -> "Communicator":
        """Communicator over a subset of this group (local rank indices)."""
        return Communicator(self._metrics, [self._group[r] for r in local_ranks], self._transport)

    def for_group(self, global_ranks: Sequence[int]) -> "Communicator":
        """Communicator over ``global_ranks``, inheriting metrics and transport."""
        return Communicator(self._metrics, global_ranks, self._transport)

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _charge_send(self, local_rank: int, nbytes: int, messages: int = 1) -> None:
        counters = self._metrics.for_phase(self._group[local_rank])
        counters.messages_sent += messages
        counters.bytes_sent += nbytes

    def _charge_recv(self, local_rank: int, nbytes: int, messages: int = 1) -> None:
        counters = self._metrics.for_phase(self._group[local_rank])
        counters.messages_received += messages
        counters.bytes_received += nbytes

    def _charge_sync(self) -> None:
        for rank in self._group:
            self._metrics.for_phase(rank).synchronizations += 1

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks (accounting only)."""
        self._charge_sync()

    def _tree_depth(self) -> int:
        """Rounds of a binomial-tree / recursive-doubling collective."""
        return max(int(math.ceil(math.log2(self.size))), 1) if self.size > 1 else 0

    def bcast(self, value: Any, root: int = 0) -> List[Any]:
        """Broadcast ``value`` from local rank ``root`` to every rank.

        Returns a per-rank list of the broadcast value (shared by reference).
        Modeled as a binomial-tree broadcast: the root injects the payload
        ``ceil(log2 P)`` times (intermediate ranks forward it, but the
        accounting attributes the injections to the root to keep the
        per-phase maximum representative), and every other rank receives it
        exactly once.
        """
        self._validate_local_rank(root)
        nbytes = payload_nbytes(value)
        depth = self._tree_depth()
        for local in range(self.size):
            if local == root:
                self._charge_send(local, nbytes * depth, depth)
            else:
                self._charge_recv(local, nbytes, 1)
        return [
            value if local == root else self._transport.transfer(value)
            for local in range(self.size)
        ]

    def gather(self, values: Sequence[Any], root: int = 0) -> List[Any] | None:
        """Gather one value per rank to ``root``.

        ``values[i]`` is the contribution of local rank ``i``.  Returns the
        gathered list at the root position and ``None`` conceptually
        elsewhere; since the simulation is single-process the list itself is
        returned for convenience.
        """
        self._validate_values(values)
        self._validate_local_rank(root)
        total = 0
        for local, value in enumerate(values):
            nbytes = payload_nbytes(value)
            if local != root:
                self._charge_send(local, nbytes, 1)
                total += nbytes
        self._charge_recv(root, total, max(self.size - 1, 0))
        return [
            value if local == root else self._transport.transfer(value)
            for local, value in enumerate(values)
        ]

    def allgather(self, values: Sequence[Any]) -> List[List[Any]]:
        """All-gather: every rank receives every rank's contribution.

        Modeled as recursive doubling: ``ceil(log2 P)`` rounds per rank, with
        every rank still moving the full ``(P-1)``-contribution payload.
        """
        self._validate_values(values)
        sizes = [payload_nbytes(v) for v in values]
        total = sum(sizes)
        depth = self._tree_depth()
        for local in range(self.size):
            self._charge_send(local, total - sizes[local], depth)
            self._charge_recv(local, total - sizes[local], depth)
        return [
            [value if src == dst else self._transport.transfer(value)
             for src, value in enumerate(values)]
            for dst in range(self.size)
        ]

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> List[Any]:
        """Scatter one item per rank from ``root``."""
        self._validate_local_rank(root)
        if values is None:
            raise ValueError("scatter requires the per-rank values at the root")
        self._validate_values(values)
        for local, value in enumerate(values):
            nbytes = payload_nbytes(value)
            if local == root:
                continue
            self._charge_send(root, nbytes, 1)
            self._charge_recv(local, nbytes, 1)
        return [
            value if local == root else self._transport.transfer(value)
            for local, value in enumerate(values)
        ]

    def alltoall(self, send: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Personalised all-to-all: ``send[src][dst]`` goes to rank ``dst``.

        Returns ``recv`` with ``recv[dst][src] == send[src][dst]``.
        Empty payloads (``None`` or zero-length arrays) are not charged as
        messages, matching the sparse all-to-all the paper's query phase
        performs.
        """
        if len(send) != self.size:
            raise ValueError(f"expected {self.size} send rows, got {len(send)}")
        for src, row in enumerate(send):
            if len(row) != self.size:
                raise ValueError(f"send row {src} has {len(row)} entries, expected {self.size}")
        recv: List[List[Any]] = [[None for _ in range(self.size)] for _ in range(self.size)]
        for src in range(self.size):
            for dst in range(self.size):
                item = send[src][dst]
                if src == dst:
                    recv[dst][src] = item
                    continue
                nbytes = payload_nbytes(item)
                if nbytes == 0 and not _is_nonempty(item):
                    recv[dst][src] = item
                    continue
                recv[dst][src] = self._transport.transfer(item)
                self._charge_send(src, nbytes, 1)
                self._charge_recv(dst, nbytes, 1)
        return recv

    def alltoallv(self, send: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Alias of :meth:`alltoall`; provided for MPI naming familiarity."""
        return self.alltoall(send)

    def reduce(self, values: Sequence[Any], op: Callable[[Any, Any], Any], root: int = 0) -> Any:
        """Reduce per-rank values to the root with binary operator ``op``.

        Modeled as a binomial-tree reduction: every non-root rank sends its
        (partially reduced) contribution once and the root receives
        ``ceil(log2 P)`` already-combined messages.
        """
        self._validate_values(values)
        self._validate_local_rank(root)
        nbytes = payload_nbytes(values[0])
        depth = self._tree_depth()
        for local in range(self.size):
            if local != root:
                self._charge_send(local, nbytes, 1)
        self._charge_recv(root, nbytes * depth, depth)
        arriving = [
            value if local == root else self._transport.transfer(value)
            for local, value in enumerate(values)
        ]
        result = arriving[0]
        for value in arriving[1:]:
            result = op(result, value)
        return result

    def allreduce(self, values: Sequence[Any], op: Callable[[Any, Any], Any]) -> List[Any]:
        """Reduce then broadcast; returns the reduced value for every rank."""
        result = self.reduce(values, op, root=0)
        return self.bcast(result, root=0)

    def allreduce_sum(self, values: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Element-wise sum allreduce over NumPy arrays."""
        arrays = [np.asarray(v) for v in values]
        return self.allreduce(arrays, lambda a, b: a + b)

    def send(self, src: int, dst: int, payload: Any) -> Any:
        """Point-to-point send from local rank ``src`` to ``dst``."""
        self._validate_local_rank(src)
        self._validate_local_rank(dst)
        nbytes = payload_nbytes(payload)
        if src == dst:
            return payload
        self._charge_send(src, nbytes, 1)
        self._charge_recv(dst, nbytes, 1)
        return self._transport.transfer(payload)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _validate_local_rank(self, local_rank: int) -> None:
        if not 0 <= local_rank < self.size:
            raise ValueError(f"local rank {local_rank} outside communicator of size {self.size}")

    def _validate_values(self, values: Sequence[Any]) -> None:
        if len(values) != self.size:
            raise ValueError(f"expected {self.size} per-rank values, got {len(values)}")


def _is_nonempty(item: Any) -> bool:
    """True when ``item`` represents an actual payload worth a message."""
    if item is None:
        return False
    if isinstance(item, np.ndarray):
        return item.size > 0
    if isinstance(item, (list, tuple, dict, bytes, bytearray)):
        return len(item) > 0
    return True
