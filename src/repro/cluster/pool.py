"""Execution backends for running embarrassingly parallel work for real.

The simulation models intra-node parallelism analytically, but some
experiments (the single-node scaling example, and users who simply want
faster answers on their laptop) benefit from genuinely parallel execution.
This module provides interchangeable backends with a single ``map`` API:

* :class:`SerialBackend` — plain loop (deterministic baseline, default);
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``; useful
  when the work releases the GIL (large NumPy kernels);
* :class:`ProcessBackend` — ``multiprocessing`` pool for CPU-bound Python
  work such as per-query kd-tree traversals.

Backends are deliberately tiny; the query engine accepts any object with a
``map(fn, items)`` method.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Protocol, Sequence


class ExecutionBackend(Protocol):
    """Minimal protocol for a work-distribution backend."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item, preserving order."""
        ...  # pragma: no cover - protocol definition

    def close(self) -> None:
        """Release any worker resources."""
        ...  # pragma: no cover - protocol definition


class SerialBackend:
    """Run work items one after another in the calling thread."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` sequentially."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialBackend()"


class ThreadBackend:
    """Thread-pool backend (best for GIL-releasing NumPy-heavy work)."""

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = min(32, (os.cpu_count() or 1)) if n_workers is None else n_workers
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        self._executor: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.n_workers)
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` across the thread pool, preserving order."""
        if not items:
            return []
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        """Shut the pool down."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ThreadBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadBackend(n_workers={self.n_workers})"


class ProcessBackend:
    """Process-pool backend for CPU-bound pure-Python work.

    Work functions and items must be picklable.  Worker start-up is lazy so
    constructing the backend is cheap.
    """

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = (os.cpu_count() or 1) if n_workers is None else n_workers
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        self._executor: ProcessPoolExecutor | None = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` across the process pool, preserving order."""
        if not items:
            return []
        return list(self._ensure().map(fn, items))

    def close(self) -> None:
        """Shut the pool down."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessBackend(n_workers={self.n_workers})"


def chunk_items(items: Sequence[Any], n_chunks: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, balanced chunks."""
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    n = len(items)
    if n == 0:
        return []
    n_chunks = min(n_chunks, n)
    chunks: List[List[Any]] = []
    base, extra = divmod(n, n_chunks)
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(list(items[start : start + size]))
        start += size
    return chunks
