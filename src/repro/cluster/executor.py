"""Pluggable rank executors: how per-rank SPMD steps actually run.

The algorithms in :mod:`repro.core` are bulk-synchronous: every phase is a
set of independent per-rank *steps* (build a local tree, answer a query
batch, histogram a coordinate column) separated by collective exchanges
through the :class:`~repro.cluster.comm.Communicator`.  Historically each
call site hard-coded ``for rank in cluster.ranks:``; this module turns the
dispatch into a pluggable policy so the same algorithm code runs

* :class:`InlineExecutor` — sequentially in the calling thread (the
  deterministic default, byte-identical to the historical loops);
* :class:`ThreadExecutor` — across a thread pool (wins when the step is a
  GIL-releasing NumPy kernel);
* :class:`ProcessExecutor` — across a persistent ``multiprocessing`` worker
  pool.  Heavy per-rank state (point arrays, local kd-trees) is *published*
  into ``multiprocessing.shared_memory`` segments — write-once: a publish
  never mutates a live segment, it allocates a fresh one and retires the
  old — and workers map them as zero-copy read-only NumPy views.  Task and
  result messages are pickled frames over multiprocessing queues.

Steps are deliberately *pure*: a step receives a read-only
:class:`RankState` plus explicit picklable arguments and returns a
picklable result.  All mutation of authoritative rank state and all metrics
accounting happen in the parent, which is what keeps results and
communicator byte counters identical across executors.

A step must be a module-level function (so the process backend can pickle
it by reference)::

    def _local_knn_step(state, queries, k):
        return batch_knn(state.tree, queries, k)

    tasks = [RankTask(r, _local_knn_step, (q[r], k), {"tree": tree_of(r)})
             for r in range(n_ranks)]
    d_i_stats = cluster.run_ranks(tasks)
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import traceback
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.runtime import guarded, new_lock

#: Arrays smaller than this are shipped inline inside the task frame rather
#: than through a shared-memory segment (segment setup costs more than the
#: copy for tiny payloads, and zero-size segments are not representable).
_INLINE_MAX_BYTES = 16384

#: Tree arrays published for worker-side reconstruction, in constructor order.
_TREE_ARRAYS = ("points", "ids", "split_dim", "split_val", "left", "right", "start", "count")


@dataclass
class RankTask:
    """One per-rank unit of work submitted to an executor.

    Attributes
    ----------
    rank:
        Global rank id the step belongs to (reported back on errors and used
        to key published state).
    step:
        Module-level callable ``step(state, *args)``.
    args:
        Positional arguments forwarded to the step (must be picklable for
        the process backend).
    state:
        Named heavy rank-local state the step reads through
        :class:`RankState` attributes.  Values may be NumPy arrays or
        :class:`~repro.kdtree.tree.KDTree` instances; the process backend
        publishes them to shared memory keyed by object identity, so
        resubmitting unchanged state costs nothing.  State is treated as
        immutable while published: to change it, submit a *new* object
        (replace, don't mutate) — in-place mutation of a published array is
        not propagated to workers and would silently serve stale bytes.
        Every call site in :mod:`repro.core` follows this rule
        (``Rank.set_points`` and tree builds always allocate fresh arrays).
    """

    rank: int
    step: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    state: Dict[str, Any] = field(default_factory=dict)


class RankState:
    """Read-only view of one rank's state handed to a step."""

    def __init__(self, rank: int, values: Dict[str, Any]) -> None:
        self.rank = rank
        self._values = values

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(
                f"rank state has no item {name!r}; available: {sorted(self._values)}"
            ) from None


class RankExecutor:
    """Interface every executor implements (see module docstring)."""

    #: Short identifier used in reprs, benchmarks and ``make_executor``.
    name: str = "abstract"

    def run(self, tasks: Sequence[Optional[RankTask]]) -> List[Any]:
        """Execute every non-``None`` task; returns per-task results in order.

        ``None`` entries are skipped and yield ``None`` results, so call
        sites can keep dense rank-indexed task lists.
        """
        raise NotImplementedError

    def submit(self, task: RankTask) -> Future:
        """Submit one task; returns a future resolving to its result.

        The futures interface backs the serving-side dispatch plane
        (:mod:`repro.fleet.dispatch`), which needs individual completion
        instead of the bulk-synchronous :meth:`run` barrier.  Only the
        in-process backends implement it: the process backend's tasks close
        over live service objects that cannot cross a process boundary.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support futures-based submit(); "
            "use an inline or thread executor"
        )

    def close(self) -> None:
        """Release workers and published shared-memory segments (idempotent)."""

    def __enter__(self) -> "RankExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class _WorkerPoolDied(RuntimeError):
    """Internal: the process pool lost workers mid-run (triggers respawn)."""


def _run_task(task: RankTask) -> Any:
    return task.step(RankState(task.rank, dict(task.state)), *task.args)


class InlineExecutor(RankExecutor):
    """Run rank steps sequentially in the calling thread (the default)."""

    name = "inline"

    def run(self, tasks: Sequence[Optional[RankTask]]) -> List[Any]:
        return [None if task is None else _run_task(task) for task in tasks]

    def submit(self, task: RankTask) -> Future:
        fut: Future = Future()
        try:
            fut.set_result(_run_task(task))
        except BaseException as exc:
            fut.set_exception(exc)
        return fut

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "InlineExecutor()"


@guarded
class ThreadExecutor(RankExecutor):
    """Run rank steps across a persistent thread pool.

    Worthwhile when steps spend their time in GIL-releasing NumPy kernels
    (batched traversals, partition scans); pure-Python steps serialise on
    the GIL and see no speedup.  The lazy pool start and the closed flag
    are lock-guarded, so concurrent submitters racing a close either get
    the pool or a clean "executor is closed" error — never a pool created
    after shutdown.
    """

    name = "thread"

    GUARDED_BY = {"_pool": "_lock", "_closed": "_lock"}

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = _default_workers() if n_workers is None else n_workers
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        self._lock = new_lock("ThreadExecutor._lock")
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    def _live_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.n_workers)
            return self._pool

    def run(self, tasks: Sequence[Optional[RankTask]]) -> List[Any]:
        live = [(i, task) for i, task in enumerate(tasks) if task is not None]
        results: List[Any] = [None] * len(tasks)
        if not live:
            return results
        pool = self._live_pool()
        for (i, _), result in zip(live, pool.map(_run_task, [t for _, t in live])):
            results[i] = result
        return results

    def submit(self, task: RankTask) -> Future:
        return self._live_pool().submit(_run_task, task)

    def close(self) -> None:
        # Flip the flag under the lock, shut the pool down outside it: a
        # second closer returns immediately while the first waits for
        # workers, and no submitter can resurrect the pool in between.
        with self._lock:
            already = self._closed
            self._closed = True
            pool, self._pool = self._pool, None
        if not already and pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadExecutor(n_workers={self.n_workers})"


# ----------------------------------------------------------------------
# Process backend: shared-memory publication
# ----------------------------------------------------------------------
@dataclass
class _Publication:
    """One published object: its spec, its segments and how many
    ``(rank, name)`` bindings currently reference it."""

    obj: Any
    spec: tuple
    segments: list
    bound: int = 0


def _unlink_segments(segments: list) -> None:
    """Retire shared-memory segments the parent owns."""
    for shm in segments:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view is still live
            pass


def _publish_array(arr: np.ndarray, segments: list) -> tuple:
    """Spec for ``arr``: inline for tiny payloads, else a fresh SHM segment.

    Appends any created :class:`SharedMemory` handle to ``segments`` so the
    caller owns the lifetime (write-once publish: segments are never reused).
    """
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    if arr.nbytes < _INLINE_MAX_BYTES:
        return ("inline", arr)
    shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    segments.append(shm)
    return ("shm", shm.name, arr.dtype.str, arr.shape)


def _attach_array(spec: tuple, shms: list) -> np.ndarray:
    """Materialise an array spec in a worker; zero-copy for SHM specs."""
    from multiprocessing import shared_memory

    if spec[0] == "inline":
        return spec[1]
    _, name, dtype, shape = spec
    # The resource tracker is shared across the whole process family (its fd
    # is inherited/passed to children), so the attach-side registration this
    # performs is an idempotent set-add of a name the parent already tracks;
    # the parent's unlink() unregisters it exactly once.
    shm = shared_memory.SharedMemory(name=name)
    shms.append(shm)
    view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    view.flags.writeable = False
    return view


def _publish_value(value: Any, segments: list) -> tuple:
    """Publication spec for one state value (array or kd-tree)."""
    from repro.kdtree.tree import KDTree

    if isinstance(value, np.ndarray):
        return ("array", _publish_array(value, segments))
    if isinstance(value, KDTree):
        arrays = {name: _publish_array(getattr(value, name), segments) for name in _TREE_ARRAYS}
        return ("tree", arrays, value.config)
    raise TypeError(
        f"rank state values must be numpy arrays or KDTree instances, got {type(value).__name__}"
    )


def _materialize_value(spec: tuple, shms: list) -> Any:
    """Worker-side inverse of :func:`_publish_value`."""
    if spec[0] == "array":
        return _attach_array(spec[1], shms)
    from repro.kdtree.tree import KDTree, TreeBuildStats

    _, arrays, config = spec
    attached = {name: _attach_array(arrays[name], shms) for name in _TREE_ARRAYS}
    return KDTree(config=config, stats=TreeBuildStats(), **attached)


def _worker_main(task_queue, result_queue) -> None:
    """Persistent worker loop: pickled task frames in, result frames out.

    Attached publications are cached by publication id (an object shared by
    several ranks — e.g. a replicated tree — is mapped once) and released
    when no ``(rank, name)`` binding references them any more.
    """
    bindings: Dict[Tuple[int, str], int] = {}
    pubs: Dict[int, Tuple[list, Any]] = {}
    while True:
        raw = task_queue.get()
        if raw is None:
            break
        run_id, seq, rank, step, args, state_specs, min_live_pub = pickle.loads(raw)
        try:
            # Publication ids are monotonic and the frame carries the oldest
            # *live* one, so anything older in the cache was retired by the
            # parent and its segments can be reclaimed now instead of
            # lingering until a task for the same (rank, name) arrives.
            for pub_id in [p for p in pubs if p < min_live_pub]:
                for shm in pubs.pop(pub_id)[0]:
                    shm.close()
            for key in [k for k, v in bindings.items() if v < min_live_pub]:
                del bindings[key]
            values: Dict[str, Any] = {}
            for name, (pub_id, spec) in state_specs.items():
                old = bindings.get((rank, name))
                if old != pub_id:
                    bindings[(rank, name)] = pub_id
                    if old is not None and old not in bindings.values():
                        for shm in pubs.pop(old, ([], None))[0]:
                            shm.close()
                if pub_id in pubs:
                    values[name] = pubs[pub_id][1]
                    continue
                shms: list = []
                obj = _materialize_value(spec, shms)
                pubs[pub_id] = (shms, obj)
                values[name] = obj
            result = step(RankState(rank, values), *args)
            # Serialise here, not in the queue's feeder thread: an
            # unpicklable result must become an error frame the parent sees,
            # not a silent drop that hangs the result wait.
            blob = pickle.dumps((run_id, seq, True, result), protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException:
            blob = pickle.dumps(
                (run_id, seq, False, traceback.format_exc()),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        result_queue.put(blob)
    for shms, _ in pubs.values():
        for shm in shms:
            shm.close()


@guarded
class ProcessExecutor(RankExecutor):
    """Run rank steps on a persistent pool of worker processes.

    Heavy state is published once per object into shared memory and read by
    workers as zero-copy views; tasks and results travel as pickled frames
    over multiprocessing queues.  Workers start lazily on the first
    :meth:`run` and live until :meth:`close`.

    Parameters
    ----------
    n_workers:
        Worker processes (defaults to the CPU count).
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap startup, inherits imported modules) and ``"spawn"``
        elsewhere.
    result_timeout_s:
        How long :meth:`run` waits between result frames before checking
        worker liveness; a dead worker turns the wait into a hard error
        instead of a deadlock.
    """

    name = "process"

    GUARDED_BY = {"_closed": "_lock"}

    def __init__(
        self,
        n_workers: int | None = None,
        start_method: str | None = None,
        result_timeout_s: float = 1.0,
    ) -> None:
        import multiprocessing as mp

        self.n_workers = _default_workers() if n_workers is None else n_workers
        if self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        if start_method is None:
            start_method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(start_method)
        self._workers: list = []
        self._task_queue = None
        self._result_queue = None
        # Publications are keyed by object identity and reference-counted by
        # their (rank, name) bindings: an object submitted for several ranks
        # (a replicated tree) is published once, and a publication is
        # unlinked when its last binding moves to a newer object.  The
        # strong object reference pins the published bytes and makes the
        # identity check safe against id() reuse.
        self._pubs: Dict[int, _Publication] = {}
        self._by_obj: Dict[int, int] = {}
        self._bindings: Dict[Tuple[int, str], int] = {}
        self._next_pub_id = 0
        self._run_counter = 0
        self._result_timeout_s = result_timeout_s
        self._lock = new_lock("ProcessExecutor._lock")
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._workers:
            return
        with self._lock:
            if self._closed:
                raise RuntimeError("executor is closed")
        try:
            # Start the shared-memory resource tracker *before* the workers
            # exist, so the whole process family shares one tracker: worker
            # attaches then register names the parent already tracks
            # (idempotent), and the parent's unlink retires each name
            # exactly once.  Workers forked first would lazily spawn their
            # own trackers, which would mis-report the parent's segments as
            # leaked at shutdown.
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        for _ in range(self.n_workers):
            proc = self._ctx.Process(
                target=_worker_main, args=(self._task_queue, self._result_queue), daemon=True
            )
            proc.start()
            self._workers.append(proc)

    def close(self) -> None:
        # Atomic check-and-set: exactly one closer runs the teardown, any
        # concurrent or repeated close returns immediately.
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._workers:
            for _ in self._workers:
                self._task_queue.put(None)
            for proc in self._workers:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
                    proc.join(timeout=1.0)
            self._task_queue.close()
            self._result_queue.close()
            self._workers = []
        for pub in self._pubs.values():
            _unlink_segments(pub.segments)
        self._pubs.clear()
        self._by_obj.clear()
        self._bindings.clear()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def _publish(self, rank: int, name: str, value: Any) -> Tuple[int, tuple]:
        """(pub_id, spec) for ``value``, publishing each object at most once.

        The same object submitted under several ``(rank, name)`` bindings
        (e.g. a tree replicated on every rank) shares one publication; a
        publication is unlinked once its last binding rebinds to a newer
        object (write-once publish, reference-counted retirement).
        """
        pub_id = self._by_obj.get(id(value))
        pub = self._pubs.get(pub_id) if pub_id is not None else None
        if pub is None or pub.obj is not value:
            segments: list = []
            spec = _publish_value(value, segments)
            pub_id = self._next_pub_id
            self._next_pub_id += 1
            pub = _Publication(obj=value, spec=spec, segments=segments)
            self._pubs[pub_id] = pub
            self._by_obj[id(value)] = pub_id
        key = (rank, name)
        old = self._bindings.get(key)
        if old != pub_id:
            self._bindings[key] = pub_id
            pub.bound += 1
            if old is not None:
                self._release_binding(old)
        return pub_id, pub.spec

    def _release_binding(self, pub_id: int) -> None:
        pub = self._pubs[pub_id]
        pub.bound -= 1
        if pub.bound > 0:
            return
        _unlink_segments(pub.segments)
        del self._pubs[pub_id]
        if self._by_obj.get(id(pub.obj)) == pub_id:
            del self._by_obj[id(pub.obj)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Optional[RankTask]]) -> List[Any]:
        live = [(i, task) for i, task in enumerate(tasks) if task is not None]
        results: List[Any] = [None] * len(tasks)
        if not live:
            return results
        self._ensure_started()
        retried = False
        while True:
            try:
                self._run_once(live, results)
                return results
            except _WorkerPoolDied as death:
                # Rank steps are pure functions of published state, so after
                # respawning the pool the whole run can safely re-execute.
                # One retry only: a deterministic crash (e.g. OOM on a task)
                # must surface instead of looping.
                self._respawn()
                if retried:
                    raise RuntimeError(str(death))
                retried = True

    def _run_once(self, live, results) -> None:
        self._run_counter += 1
        run_id = self._run_counter
        min_live_pub = min(self._pubs, default=self._next_pub_id)
        for seq, task in live:
            state_specs = {
                name: self._publish(task.rank, name, value) for name, value in task.state.items()
            }
            # Pickle eagerly so an unpicklable step/argument raises here, in
            # the caller, instead of silently failing in the queue's feeder
            # thread and hanging the result wait.
            self._task_queue.put(
                pickle.dumps(
                    (run_id, seq, task.rank, task.step, task.args, state_specs, min_live_pub),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            )
        outstanding = len(live)
        while outstanding:
            try:
                blob = self._result_queue.get(timeout=self._result_timeout_s)
            except queue_mod.Empty:
                dead = [p for p in self._workers if not p.is_alive()]
                if dead:
                    raise _WorkerPoolDied(
                        f"{len(dead)} executor worker(s) died with exit codes "
                        f"{[p.exitcode for p in dead]}"
                    )
                continue
            rid, seq, ok, payload = pickle.loads(blob)
            if rid != run_id:
                # Straggler frame from an earlier run that aborted on a step
                # failure; its run already raised, so the frame is dropped
                # rather than misattributed to this run's seq indexes.
                continue
            if not ok:
                raise RuntimeError(f"rank step failed in worker:\n{payload}")
            results[seq] = payload
            outstanding -= 1

    def _respawn(self) -> None:
        """Tear down a (partially) dead pool and start a fresh one.

        Publications survive — the parent owns the segments — so new workers
        simply re-attach on their first task.  Fresh queues drop any frames
        the dead pool left behind.
        """
        for proc in self._workers:
            proc.terminate()
            proc.join(timeout=5.0)
        self._workers = []
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._task_queue = None
        self._result_queue = None
        self._ensure_started()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor(n_workers={self.n_workers})"


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def make_executor(spec: "str | RankExecutor | None", n_workers: int | None = None) -> RankExecutor:
    """Build an executor from a spec.

    ``None`` / ``"inline"`` give the sequential default; ``"thread"`` and
    ``"process"`` build pools (worker count from ``n_workers`` or
    ``"thread:4"``-style suffixes); an existing executor passes through.
    """
    if spec is None:
        return InlineExecutor()
    if isinstance(spec, RankExecutor):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"executor spec must be a string or RankExecutor, got {type(spec).__name__}")
    kind, _, count = spec.partition(":")
    if count:
        n_workers = int(count)
    kind = kind.strip().lower()
    if kind == "inline":
        return InlineExecutor()
    if kind in ("thread", "threads"):
        return ThreadExecutor(n_workers)
    if kind in ("process", "processes"):
        return ProcessExecutor(n_workers)
    raise ValueError(f"unknown executor spec {spec!r}; expected inline, thread or process")
