"""Simulated distributed-memory machine substrate.

The paper runs on Edison (Cray XC30, ~50 000 cores) using MPI + OpenMP +
SIMD intrinsics.  This package substitutes a deterministic, single-process
simulation of that machine:

* :class:`~repro.cluster.machine.MachineSpec` describes a node (cores, SMT,
  SIMD width, memory bandwidth) and the interconnect (latency, bandwidth),
  with presets for Edison's Xeon E5-2695v2 nodes and Knights Landing nodes.
* :class:`~repro.cluster.simulator.Cluster` holds ``P`` ranks and a
  :class:`~repro.cluster.comm.Communicator` whose collectives move real
  NumPy arrays between rank-local stores while accounting every byte and
  message into :class:`~repro.cluster.metrics.MetricsRegistry`.
* :class:`~repro.cluster.cost_model.CostModel` converts the recorded
  computation and communication counters into modeled wall-clock time so
  that scaling *shapes* (strong/weak scaling, breakdowns, pipelining
  overlap) can be reproduced without the original hardware.
* :mod:`~repro.cluster.executor` makes rank dispatch pluggable: the same
  SPMD step code runs inline (deterministic default), across a thread pool,
  or on a persistent multiprocessing worker pool with per-rank state
  published in shared memory — results and metrics are identical across
  executors, only wall-clock changes.

The algorithms in :mod:`repro.core` are written against the communicator
and executor APIs only, so the accounting reflects exactly the traffic the
paper's MPI code would generate.
"""

from repro.cluster.machine import InterconnectSpec, MachineSpec
from repro.cluster.metrics import MetricsRegistry, PhaseCounters, RankCounters
from repro.cluster.comm import (
    Communicator,
    MessageTransport,
    PickleTransport,
    ReferenceTransport,
)
from repro.cluster.executor import (
    InlineExecutor,
    ProcessExecutor,
    RankExecutor,
    RankState,
    RankTask,
    ThreadExecutor,
    make_executor,
)
from repro.cluster.simulator import Cluster, Rank
from repro.cluster.cost_model import CostModel, PhaseTime, TimeBreakdown

__all__ = [
    "InterconnectSpec",
    "MachineSpec",
    "MetricsRegistry",
    "PhaseCounters",
    "RankCounters",
    "Communicator",
    "MessageTransport",
    "ReferenceTransport",
    "PickleTransport",
    "Cluster",
    "Rank",
    "CostModel",
    "PhaseTime",
    "TimeBreakdown",
    "RankExecutor",
    "RankTask",
    "RankState",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
]
