"""Hardware descriptions used by the cost model.

A :class:`MachineSpec` captures the per-node and interconnect parameters the
paper reports for its two platforms:

* Edison (Cray XC30): 2 x 12-core Intel Xeon E5-2695 v2 @ 2.4 GHz, 64 GB
  DDR3-1866, Cray Aries interconnect with ~10 GB/s bi-directional injection
  bandwidth per node.
* Knights Landing (KNL): 68 cores @ 1.4 GHz, wide (512-bit) SIMD.

The numbers only matter *relatively*: the cost model divides measured
operation counts by throughputs derived from these parameters, so the
reproduced figures inherit the paper's qualitative behaviour (compute-bound
construction, memory-latency-bound querying, communication-heavy global tree
phase) rather than its absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class InterconnectSpec:
    """Network parameters of the cluster interconnect.

    Parameters
    ----------
    latency_s:
        One-way small-message latency in seconds.
    bandwidth_bytes_per_s:
        Per-node injection bandwidth in bytes/second.
    name:
        Human readable identifier.
    """

    latency_s: float = 1.5e-6
    bandwidth_bytes_per_s: float = 10e9
    name: str = "generic"

    def message_time(self, nbytes: int, n_messages: int = 1) -> float:
        """Alpha-beta time for ``n_messages`` totalling ``nbytes`` bytes."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if n_messages < 0:
            raise ValueError(f"n_messages must be non-negative, got {n_messages}")
        return n_messages * self.latency_s + nbytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class MachineSpec:
    """Description of one compute node plus its interconnect.

    Attributes
    ----------
    cores_per_node:
        Physical cores per node.
    smt_per_core:
        Hardware threads per core (SMT / hyper-threading).
    frequency_hz:
        Nominal clock frequency.
    simd_width_doubles:
        Number of double-precision lanes per SIMD instruction (4 for AVX,
        8 for AVX-512).
    flops_per_cycle_per_lane:
        Sustained floating-point operations per cycle per lane for the
        distance-computation kernel (FMA counted as 2).
    memory_bandwidth_bytes_per_s:
        Per-node sustainable memory bandwidth (STREAM-like).
    memory_latency_s:
        Average latency of a dependent random memory access; the kd-tree
        traversal inner loop is bound by this term (Section V-B1 of the
        paper: "the code is significantly limited by memory accesses").
    smt_latency_hiding:
        Fraction of the memory latency hidden when SMT threads are used
        (the paper reports an extra 1.2-1.7x from SMT).
    interconnect:
        :class:`InterconnectSpec` of the network between nodes.
    name:
        Human readable identifier.
    """

    cores_per_node: int = 24
    smt_per_core: int = 2
    frequency_hz: float = 2.4e9
    simd_width_doubles: int = 4
    flops_per_cycle_per_lane: float = 2.0
    memory_bandwidth_bytes_per_s: float = 89e9
    memory_latency_s: float = 85e-9
    smt_latency_hiding: float = 0.45
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)
    name: str = "generic-node"

    def __post_init__(self) -> None:
        if self.cores_per_node <= 0:
            raise ValueError(f"cores_per_node must be positive, got {self.cores_per_node}")
        if self.smt_per_core <= 0:
            raise ValueError(f"smt_per_core must be positive, got {self.smt_per_core}")
        if self.simd_width_doubles <= 0:
            raise ValueError(f"simd_width_doubles must be positive, got {self.simd_width_doubles}")
        if self.frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be positive, got {self.frequency_hz}")

    # ------------------------------------------------------------------
    # Derived throughputs
    # ------------------------------------------------------------------
    def peak_flops(self, threads: int | None = None) -> float:
        """Peak double-precision FLOP/s for ``threads`` worker threads."""
        threads = self._clamp_threads(threads)
        physical = min(threads, self.cores_per_node)
        return physical * self.frequency_hz * self.simd_width_doubles * self.flops_per_cycle_per_lane

    def effective_memory_latency(self, threads: int | None = None) -> float:
        """Memory latency per dependent access, accounting for SMT hiding."""
        threads = self._clamp_threads(threads)
        if threads > self.cores_per_node:
            return self.memory_latency_s * (1.0 - self.smt_latency_hiding)
        return self.memory_latency_s

    def scalar_rate(self, threads: int | None = None) -> float:
        """Scalar (non-SIMD) operations per second across ``threads`` threads."""
        threads = self._clamp_threads(threads)
        physical = min(threads, self.cores_per_node)
        return physical * self.frequency_hz

    def total_threads(self) -> int:
        """Total hardware threads (cores x SMT)."""
        return self.cores_per_node * self.smt_per_core

    def _clamp_threads(self, threads: int | None) -> int:
        if threads is None:
            return self.cores_per_node
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        return min(threads, self.total_threads())

    def with_interconnect(self, interconnect: InterconnectSpec) -> "MachineSpec":
        """Return a copy of this spec with a different interconnect."""
        return replace(self, interconnect=interconnect)

    def with_scaled_latency(self, factor: float) -> "MachineSpec":
        """Return a copy with the per-message network latency scaled by ``factor``.

        The reproduction runs datasets that are orders of magnitude smaller
        than the paper's, so per-rank computation and per-rank transferred
        bytes shrink proportionally while the fixed per-message latency does
        not.  Scaling the latency by (roughly) the same factor restores the
        compute-to-latency balance of the paper's operating regime, which is
        what the scaling-figure experiments rely on (see EXPERIMENTS.md).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        scaled = replace(self.interconnect, latency_s=self.interconnect.latency_s * factor)
        return replace(self, interconnect=scaled)

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def edison() -> "MachineSpec":
        """Edison Cray XC30 node: 2 x 12-core Xeon E5-2695v2, Aries network."""
        return MachineSpec(
            cores_per_node=24,
            smt_per_core=2,
            frequency_hz=2.4e9,
            simd_width_doubles=4,
            flops_per_cycle_per_lane=2.0,
            memory_bandwidth_bytes_per_s=89e9,
            memory_latency_s=85e-9,
            smt_latency_hiding=0.45,
            interconnect=InterconnectSpec(latency_s=1.5e-6, bandwidth_bytes_per_s=10e9, name="cray-aries"),
            name="edison-xc30",
        )

    @staticmethod
    def knl() -> "MachineSpec":
        """Knights Landing node: 68 cores @ 1.4 GHz, AVX-512, MCDRAM."""
        return MachineSpec(
            cores_per_node=68,
            smt_per_core=4,
            frequency_hz=1.4e9,
            simd_width_doubles=8,
            flops_per_cycle_per_lane=2.0,
            memory_bandwidth_bytes_per_s=400e9,
            memory_latency_s=150e-9,
            smt_latency_hiding=0.6,
            interconnect=InterconnectSpec(latency_s=2.0e-6, bandwidth_bytes_per_s=12.5e9, name="omni-path"),
            name="knl",
        )

    @staticmethod
    def titan_z() -> "MachineSpec":
        """A Titan Z-like GPU card used as the Fig. 8(a) comparison reference.

        The buffered kd-tree baseline of Gieseke et al. runs on this device.
        The card has huge arithmetic throughput but the buffered traversal is
        bound by irregular memory access and host-device transfers, which is
        what the latency/bandwidth parameters encode.
        """
        return MachineSpec(
            cores_per_node=2880,
            smt_per_core=1,
            frequency_hz=0.876e9,
            simd_width_doubles=1,
            flops_per_cycle_per_lane=2.0,
            memory_bandwidth_bytes_per_s=336e9,
            memory_latency_s=400e-9,
            smt_latency_hiding=0.0,
            interconnect=InterconnectSpec(latency_s=10e-6, bandwidth_bytes_per_s=12e9, name="pcie"),
            name="titan-z",
        )

    @staticmethod
    def laptop() -> "MachineSpec":
        """A small generic node used for quick examples and tests."""
        return MachineSpec(
            cores_per_node=8,
            smt_per_core=2,
            frequency_hz=3.0e9,
            simd_width_doubles=4,
            flops_per_cycle_per_lane=2.0,
            memory_bandwidth_bytes_per_s=40e9,
            memory_latency_s=90e-9,
            smt_latency_hiding=0.35,
            interconnect=InterconnectSpec(latency_s=5e-6, bandwidth_bytes_per_s=2e9, name="ethernet"),
            name="laptop",
        )
