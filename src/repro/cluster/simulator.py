"""Cluster and rank state for the simulated distributed machine.

A :class:`Cluster` owns ``P`` :class:`Rank` objects, a shared
:class:`~repro.cluster.metrics.MetricsRegistry` and a
:class:`~repro.cluster.comm.Communicator`.  Algorithms in :mod:`repro.core`
are written in a bulk-synchronous SPMD style: each step loops over ranks,
reads/writes only rank-local state, and exchanges data exclusively through
the communicator so that every byte is accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.cluster.comm import Communicator, MessageTransport
from repro.cluster.executor import RankExecutor, RankTask, make_executor
from repro.cluster.machine import MachineSpec
from repro.cluster.metrics import MetricsRegistry, PhaseCounters


@dataclass
class Rank:
    """State owned by a single simulated node.

    Attributes
    ----------
    rank:
        Global rank id.
    points:
        ``(n_local, dims)`` float64 array of points currently owned.
    ids:
        ``(n_local,)`` int64 array of global point identifiers.
    store:
        Free-form per-rank storage (local kd-tree, domain box, query queues,
        ...).  Algorithms use this instead of module-level state so multiple
        clusters can coexist in one process.
    """

    rank: int
    points: np.ndarray = field(default_factory=lambda: np.empty((0, 0), dtype=np.float64))
    ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    store: Dict[str, Any] = field(default_factory=dict)

    @property
    def n_points(self) -> int:
        """Number of points currently owned by this rank."""
        return int(self.points.shape[0])

    def set_points(self, points: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Replace the rank-local point set (and optionally its global ids)."""
        points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if ids is None:
            ids = np.arange(points.shape[0], dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError(
                f"ids length {ids.shape[0]} does not match number of points {points.shape[0]}"
            )
        self.points = points
        self.ids = ids


class Cluster:
    """A simulated distributed-memory cluster of ``n_ranks`` nodes.

    Parameters
    ----------
    n_ranks:
        Number of nodes.  PANDA's global kd-tree requires a power of two for
        its recursive halving; non-powers of two are accepted but the global
        tree construction will pad groups (see :mod:`repro.core.global_tree`).
    machine:
        Per-node hardware description used by the cost model.
    threads_per_rank:
        Worker threads modeled inside each node (defaults to the physical
        core count of ``machine``).
    executor:
        How per-rank SPMD steps are dispatched: ``None``/``"inline"`` for
        the deterministic sequential loop, ``"thread"``/``"process"`` (or a
        :class:`~repro.cluster.executor.RankExecutor` instance) for real
        parallel execution.  Results and metrics are identical across
        executors; only wall-clock changes.  A spec string makes the
        cluster own the executor (``close()`` shuts it down); an instance
        stays owned by the caller, so one pool can be shared across
        clusters (e.g. service rebuilds) and survives any one of them
        closing.
    transport:
        Message transport of the communicator (default: by-reference).
    """

    def __init__(
        self,
        n_ranks: int,
        machine: MachineSpec | None = None,
        threads_per_rank: int | None = None,
        executor: "RankExecutor | str | None" = None,
        transport: MessageTransport | None = None,
    ) -> None:
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.machine = machine or MachineSpec.edison()
        if threads_per_rank is None:
            threads_per_rank = self.machine.cores_per_node
        if threads_per_rank <= 0:
            raise ValueError(f"threads_per_rank must be positive, got {threads_per_rank}")
        self.threads_per_rank = min(threads_per_rank, self.machine.total_threads())
        self.metrics = MetricsRegistry(n_ranks)
        self.comm = Communicator(self.metrics, transport=transport)
        self.executor = make_executor(executor)
        self._owns_executor = not isinstance(executor, RankExecutor)
        self.ranks: List[Rank] = [Rank(rank=r) for r in range(n_ranks)]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of simulated nodes."""
        return len(self.ranks)

    @property
    def total_cores(self) -> int:
        """Total modeled cores across the cluster."""
        return self.n_ranks * self.threads_per_rank

    def total_points(self) -> int:
        """Total number of points currently stored across all ranks."""
        return sum(rank.n_points for rank in self.ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(n_ranks={self.n_ranks}, machine={self.machine.name!r}, "
            f"threads_per_rank={self.threads_per_rank}, points={self.total_points()})"
        )

    # ------------------------------------------------------------------
    # Data distribution helpers
    # ------------------------------------------------------------------
    def distribute_block(self, points: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Assign contiguous blocks of ``points`` to ranks (file-order split).

        Mirrors the paper's assumption that "each node reads in an
        approximately equal number of points (in no particular order)".
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = points.shape[0]
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        boundaries = np.linspace(0, n, self.n_ranks + 1).astype(np.int64)
        for rank in self.ranks:
            lo, hi = boundaries[rank.rank], boundaries[rank.rank + 1]
            rank.set_points(points[lo:hi], ids[lo:hi])

    def distribute_round_robin(self, points: np.ndarray, ids: np.ndarray | None = None) -> None:
        """Deal points to ranks round-robin (maximally shuffled placement)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        n = points.shape[0]
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        for rank in self.ranks:
            sel = np.arange(rank.rank, n, self.n_ranks)
            rank.set_points(points[sel], ids[sel])

    def gather_points(self) -> np.ndarray:
        """Concatenate all rank-local points (diagnostics / verification)."""
        if self.n_ranks == 0:
            return np.empty((0, 0))
        non_empty = [rank.points for rank in self.ranks if rank.n_points > 0]
        if not non_empty:
            return np.empty((0, 0))
        return np.concatenate(non_empty, axis=0)

    def gather_ids(self) -> np.ndarray:
        """Concatenate all rank-local global ids."""
        parts = [rank.ids for rank in self.ranks if rank.n_points > 0]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def points_per_rank(self) -> List[int]:
        """Current per-rank point counts (load-balance diagnostics)."""
        return [rank.n_points for rank in self.ranks]

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-rank point counts (1.0 = perfectly balanced)."""
        counts = self.points_per_rank()
        mean = float(np.mean(counts)) if counts else 0.0
        if mean == 0.0:
            return 1.0
        return float(np.max(counts)) / mean

    # ------------------------------------------------------------------
    # SPMD helpers
    # ------------------------------------------------------------------
    def map_ranks(self, fn: Callable[[Rank], Any]) -> List[Any]:
        """Apply ``fn`` to every rank in rank order and collect the results."""
        return [fn(rank) for rank in self.ranks]

    def run_ranks(self, tasks: Sequence["RankTask | None"]) -> List[Any]:
        """Dispatch per-rank steps through the cluster's executor.

        ``tasks[i]`` may be ``None`` to skip a rank (its result is ``None``);
        results come back in task order regardless of executor.
        """
        return self.executor.run(tasks)

    def transfer_executor_ownership(self, successor: "Cluster") -> None:
        """Hand executor shutdown responsibility to ``successor``.

        Used by refit chains that pass one pooled executor from a retired
        cluster to its replacement: the successor inherits whatever
        ownership this cluster had, so closing the retired cluster no
        longer tears the shared pool out from under the live one.
        """
        if successor.executor is self.executor:
            successor._owns_executor = successor._owns_executor or self._owns_executor
            self._owns_executor = False

    def close(self) -> None:
        """Release executor workers and shared-memory segments (idempotent).

        Only executors this cluster created (from a spec string or the
        default) are shut down; a caller-supplied instance may be shared
        with other clusters and stays open — its creator closes it.
        """
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def counters(self, phase: str) -> Sequence[PhaseCounters]:
        """Per-rank counters of ``phase`` (creating empty ones if missing)."""
        return [self.metrics.rank(r).phase(phase) for r in range(self.n_ranks)]
