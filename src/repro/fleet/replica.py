"""Replicated shards: read scaling, failure injection, retry-on-death.

Each shard of the fleet is a :class:`ReplicaGroup` of identical
:class:`~repro.service.service.KNNService` instances over the same shard
point set.  Reads go to the least-loaded live replica; mutations go to
every live replica so the group stays bit-identical.  Failures are
injected deliberately (tests and chaos drills): a replica can be killed
outright or armed to die *mid-query*, in which case the group transparently
retries the batch on the next-least-loaded peer — answers never change,
only the load accounting does.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.service.service import KNNService


class ReplicaDeadError(RuntimeError):
    """The targeted replica is (or just became) dead."""


class ShardUnavailableError(RuntimeError):
    """Every replica of a shard is dead; the fleet cannot answer exactly."""


class Replica:
    """One serving copy of a shard: a service plus liveness/load state."""

    def __init__(self, shard_id: int, replica_id: int, service: KNNService) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.service = service
        self.alive = True
        self.queries_served = 0
        self._armed_failure = False

    def kill(self) -> None:
        """Fail the replica immediately (it stops receiving everything)."""
        self.alive = False
        self._armed_failure = False

    def arm_failure(self) -> None:
        """Make the *next* query attempt die mid-flight (retry-path drill)."""
        self._armed_failure = True

    def answer(self, queries: np.ndarray, k: int, at: float | None) -> Tuple[np.ndarray, np.ndarray]:
        """Answer a batch, or die (armed failure / already dead)."""
        if not self.alive:
            raise ReplicaDeadError(f"shard {self.shard_id} replica {self.replica_id} is dead")
        if self._armed_failure:
            self.kill()
            raise ReplicaDeadError(
                f"shard {self.shard_id} replica {self.replica_id} died mid-query"
            )
        out = self.service.answer_batch(queries, k=k, at=at)
        self.queries_served += int(np.atleast_2d(queries).shape[0])
        return out


class ReplicaGroup:
    """All replicas of one shard, with least-loaded routing and retries."""

    def __init__(self, shard_id: int, replicas: Sequence[Replica]) -> None:
        if not replicas:
            raise ValueError(f"shard {shard_id} needs at least one replica")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self.retries = 0
        self.deaths = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def n_alive(self) -> int:
        return sum(1 for r in self.replicas if r.alive)

    @property
    def n_live(self) -> int:
        """Live points of the shard (0 when every replica is dead)."""
        for replica in self.replicas:
            if replica.alive:
                return replica.service.n_live
        return 0

    @property
    def rebuilds(self) -> int:
        """Total rebuilds across the group's replicas."""
        return sum(r.service.rebuilds for r in self.replicas)

    def primary(self) -> Replica:
        """The least-loaded live replica (lowest id on ties)."""
        alive = [r for r in self.replicas if r.alive]
        if not alive:
            raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
        return min(alive, key=lambda r: (r.queries_served, r.replica_id))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def answer(self, queries: np.ndarray, k: int, at: float | None = None) -> Tuple[np.ndarray, np.ndarray]:
        """Exact batch answer from the least-loaded live replica.

        A replica dying mid-query is retried on the next-least-loaded peer
        (the batch is re-executed whole — replicas are identical, so the
        answer is the same bytes whichever one survives).
        """
        while True:
            replica = self.primary()  # raises ShardUnavailableError when none left
            try:
                return replica.answer(queries, k, at)
            except ReplicaDeadError:
                self.deaths += 1
                self.retries += 1

    # ------------------------------------------------------------------
    # Mutation (applied to every live replica, keeping them identical)
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray, ids: np.ndarray, at: float | None = None) -> None:
        """Insert into every live replica; loud when none is left.

        A mutation against a fully-dead shard must fail, not silently drop
        the data (there would be no peer to heal from).
        """
        if self.n_alive == 0:
            raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
        for replica in self.replicas:
            if replica.alive:
                replica.service.insert(points, ids=ids, at=at)

    def delete(self, ids: np.ndarray, at: float | None = None) -> None:
        """Delete from every live replica; loud when none is left."""
        if self.n_alive == 0:
            raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
        for replica in self.replicas:
            if replica.alive:
                replica.service.delete(ids, at=at)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def heal(self, at: float | None = None) -> int:
        """Re-seed every dead replica from a healthy peer; returns count.

        The donor's *live* arrays (tree minus tombstones plus delta) are
        refit into a fresh service carrying the dead replica's policies —
        a healed replica serves exactly the shard's live set from the first
        query on (its delta buffer starts empty, so only the unspecified
        identity of exactly-tied k-th neighbours can differ from a peer).
        """
        donor = self.primary()  # raises when the whole group is dead
        points, ids = donor.service.live_arrays()
        healed = 0
        for replica in self.replicas:
            if replica.alive:
                continue
            dead = replica.service
            # Cancel any in-flight background rebuild FIRST: its backend may
            # hold pooled-executor ownership (refit transfers it), and the
            # ownership must flow dead-bg -> dead.backend -> healed backend
            # before dead.close() runs, or the close would shut the pool
            # under the healed replica.
            dead._cancel_background()
            service = KNNService(
                dead.backend.refit(points, ids),
                k=dead.k,
                batch_policy=dead.batch_policy,
                rebuild_policy=dead.rebuild_policy,
                cache_capacity=dead.cache.capacity,
                retention=dead.records.capacity,
                service_time=dead._service_time,
                background_rebuild=dead.background_rebuild,
                snapshot_root=dead.snapshot_root,
            )
            if at is not None:
                service._advance(at)
            # The dead service's backend already transferred any pooled
            # executor ownership through refit above; closing it now only
            # releases what it still owns.
            dead.close()
            replica.service = service
            replica.alive = True
            replica._armed_failure = False
            healed += 1
        return healed
