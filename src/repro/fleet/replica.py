"""Replicated shards: read scaling, failure injection, retry-on-death.

Each shard of the fleet is a :class:`ReplicaGroup` of identical
:class:`~repro.service.service.KNNService` instances over the same shard
point set.  Reads go to the least-loaded live replica; mutations go to
every live replica so the group stays bit-identical.  Failures are
injected deliberately (tests and chaos drills): a replica can be killed
outright or armed to die *mid-query*, in which case the group transparently
retries the batch on the next-least-loaded peer — answers never change,
only the load accounting does.

Under the dispatch plane (:mod:`repro.fleet.dispatch`) a group can also
serve **hedged reads**: when a concurrent dispatcher and a ``hedge_after``
deadline are configured, an attempt that has not answered by the deadline
races a second replica on the dispatcher's replica lane and the first
answer wins — the loser is cancelled (if it never started) or discarded.
Replicas are bit-identical, so which attempt wins cannot change a single
byte of the answer; hedging only moves tail latency and the hedge
counters.  Liveness and load state are lock-guarded so concurrent shard
calls (two scatter-phase calls hitting the same group) account exactly.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait as futures_wait
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import exactness_path, requires_lock
from repro.analysis.runtime import guarded, new_lock
from repro.fleet.dispatch import Dispatcher, ShardCall
from repro.obs.clock import MONOTONIC, Clock
from repro.obs.profiler import phase
from repro.obs.tracing import Span, SpanSink
from repro.service.service import KNNService

#: Minimum latency samples before a percentile ``hedge_after`` spec arms
#: (a percentile over two observations is noise, not a deadline).
_MIN_HEDGE_SAMPLES = 8


class ReplicaDeadError(RuntimeError):
    """The targeted replica is (or just became) dead.

    ``died_now`` distinguishes an attempt that actually killed the replica
    (armed failure firing mid-query) from one that found it already dead —
    the group's death counter must move exactly once per real death, even
    when concurrent attempts race against the same dying replica.
    """

    def __init__(self, message: str, died_now: bool = True) -> None:
        super().__init__(message)
        self.died_now = died_now


class ShardUnavailableError(RuntimeError):
    """Every replica of a shard is dead; the fleet cannot answer exactly."""


@guarded
class Replica:
    """One serving copy of a shard: a service plus liveness/load state."""

    GUARDED_BY = {
        "service": "_lock",
        "alive": "_lock",
        "queries_served": "_lock",
        "in_flight": "_lock",
        "_armed_failure": "_lock",
    }

    def __init__(self, shard_id: int, replica_id: int, service: KNNService) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.service = service
        self.alive = True
        self.queries_served = 0
        #: Hedged attempts currently reserved/running on this replica;
        #: the least-loaded pick counts them so a slow attempt does not
        #: attract every hedge that fires while it runs.
        self.in_flight = 0
        self._armed_failure = False
        self._lock = new_lock("Replica._lock")

    def kill(self) -> None:
        """Fail the replica immediately (it stops receiving everything)."""
        with self._lock:
            self.alive = False
            self._armed_failure = False

    def arm_failure(self) -> None:
        """Make the *next* query attempt die mid-flight (retry-path drill)."""
        with self._lock:
            self._armed_failure = True

    def answer(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Answer a batch, or die (armed failure / already dead).

        The liveness check-and-kill is atomic, so of any number of
        concurrent attempts racing an armed replica exactly one observes
        ``died_now`` — the one that pulled the trigger.
        """
        with self._lock:
            if not self.alive:
                raise ReplicaDeadError(
                    f"shard {self.shard_id} replica {self.replica_id} is dead", died_now=False
                )
            if self._armed_failure:
                self.alive = False
                self._armed_failure = False
                raise ReplicaDeadError(
                    f"shard {self.shard_id} replica {self.replica_id} died mid-query",
                    died_now=True,
                )
            # Pin the service under the same lock as the liveness check:
            # heal() swaps self.service while holding _lock, so an attempt
            # that saw alive=True always serves on the matching service.
            service = self.service
        with phase("replica.serve"):
            out = service.answer_batch(queries, k=k, at=at, precision=precision)
        with self._lock:
            self.queries_served += int(np.atleast_2d(queries).shape[0])
        return out

    def restore_load(self, queries_served: int) -> None:
        """Reset the served-query counter (fleet rollback after a failed batch)."""
        with self._lock:
            self.queries_served = queries_served


@guarded
class ReplicaGroup:
    """All replicas of one shard, with least-loaded routing and retries.

    Parameters
    ----------
    shard_id, replicas:
        The shard and its serving copies.
    hedge_after:
        Hedged-read deadline: ``None`` disables hedging, a float is a fixed
        deadline in seconds, and a ``"p95"``-style string tracks that
        percentile of the group's recent attempt latencies (armed only once
        :data:`_MIN_HEDGE_SAMPLES` observations exist).  Hedging needs a
        concurrent dispatcher passed into :meth:`answer`; without one the
        deadline is ignored and the serial retry path runs.
    clock:
        Injectable monotonic clock for latency samples and attempt spans
        (defaults to the shared production clock).
    events:
        Optional ops event emitter (an :class:`~repro.obs.events.EventLog`
        or a scoped facade); the group reports replica deaths/heals and
        hedge firings through it.
    """

    GUARDED_BY = {
        "retries": "_lock",
        "deaths": "_lock",
        "hedges": "_lock",
        "hedge_wins": "_lock",
        "hedge_cancels": "_lock",
        "_latencies": "_lock",
    }

    def __init__(
        self,
        shard_id: int,
        replicas: Sequence[Replica],
        hedge_after: "float | str | None" = None,
        clock: Clock | None = None,
        events=None,
    ) -> None:
        if not replicas:
            raise ValueError(f"shard {shard_id} needs at least one replica")
        self.shard_id = shard_id
        self.replicas = list(replicas)
        self.hedge_after = hedge_after
        self._clock = clock if clock is not None else MONOTONIC
        self.events = events
        self.retries = 0
        self.deaths = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_cancels = 0
        # _lock guards pick/accounting state; _serve_lock serialises whole
        # answer() calls so concurrent shard calls against one group keep
        # the exact pick-retry-account semantics of the serial router (the
        # dispatch plane's concurrency win is across groups, and — via the
        # replica lane — across the hedged attempts within one call).
        self._lock = new_lock("ReplicaGroup._lock")
        self._serve_lock = new_lock("ReplicaGroup._serve_lock")
        self._latencies: Deque[float] = deque(maxlen=128)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def n_alive(self) -> int:
        return sum(1 for r in self.replicas if r.alive)

    @property
    def n_live(self) -> int:
        """Live points of the shard (0 when every replica is dead)."""
        for replica in self.replicas:
            if replica.alive:
                return replica.service.n_live
        return 0

    @property
    def rebuilds(self) -> int:
        """Total rebuilds across the group's replicas."""
        return sum(r.service.rebuilds for r in self.replicas)

    def primary(self) -> Replica:
        """The least-loaded live replica (lowest id on ties)."""
        alive = [r for r in self.replicas if r.alive]
        if not alive:
            raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
        return min(alive, key=lambda r: (r.queries_served, r.replica_id))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def answer(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None = None,
        dispatcher: Dispatcher | None = None,
        sink: SpanSink | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact batch answer from the least-loaded live replica.

        A replica dying mid-query is retried on the next-least-loaded peer
        (the batch is re-executed whole — replicas are identical, so the
        answer is the same bytes whichever one survives).  With a
        concurrent ``dispatcher`` and an armed ``hedge_after`` deadline the
        retry path generalises to hedged reads: a late attempt races a
        second replica and the first answer wins.  ``precision`` is the
        per-request distance-kernel tier override; tiers are certified
        byte-identical, so retries and hedges stay answer-invariant
        whatever tier each attempt serves at.

        ``sink`` (the enclosing shard call's span sink when the batch is
        traced) collects one ``replica_attempt`` span per attempt, hedges
        and retries included.
        """
        with self._serve_lock:
            deadline = self._hedge_deadline()
            if deadline is None or dispatcher is None or not dispatcher.concurrent:
                return self._answer_serial(queries, k, at, sink, precision)
            return self._answer_hedged(queries, k, at, deadline, dispatcher, sink, precision)

    @exactness_path
    @requires_lock("_serve_lock")
    def _answer_serial(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None,
        sink: SpanSink | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        while True:
            replica = self.primary()  # raises ShardUnavailableError when none left
            started = self._clock.monotonic()
            try:
                out = replica.answer(queries, k, at, precision)
                ended = self._clock.monotonic()
                self._note_latency(ended - started)
                if sink is not None:
                    sink.add(
                        Span(
                            f"replica_attempt r{replica.replica_id}",
                            "replica_attempt",
                            started,
                            ended,
                            {"shard": self.shard_id, "replica": replica.replica_id, "ok": True},
                        )
                    )
                return out
            except ReplicaDeadError as death:
                if sink is not None:
                    sink.add(
                        Span(
                            f"replica_attempt r{replica.replica_id}",
                            "replica_attempt",
                            started,
                            self._clock.monotonic(),
                            {
                                "shard": self.shard_id,
                                "replica": replica.replica_id,
                                "ok": False,
                                "died_now": death.died_now,
                            },
                        )
                    )
                with self._lock:
                    self.deaths += 1
                    self.retries += 1
                self._emit(
                    "replica_death",
                    replica=replica.replica_id,
                    died_now=death.died_now,
                    retried=True,
                )

    @exactness_path
    @requires_lock("_serve_lock")
    def _answer_hedged(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None,
        deadline: float,
        dispatcher: Dispatcher,
        sink: SpanSink | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One hedged read: primary attempt, then race a peer past the deadline.

        Every attempt runs on the dispatcher's replica lane (a leaf pool,
        so a shard-lane worker blocked here can never deadlock the shard
        lane).  The primary is preferred when both attempts finish; the
        loser is cancelled if it never started, otherwise discarded — its
        eventual death (if any) still lands in the death counter exactly
        once via the done callback.

        Traced attempts record into per-attempt sinks (the replica-lane
        worker is each sink's single writer); a resolved attempt's spans
        fold into the shard call's ``sink`` here, in the submitting
        thread.  A discarded-while-running loser's spans are dropped —
        nothing may read a sink a worker might still be writing — but the
        submitting thread leaves an instant marker span in its place so a
        fired hedge is always visible in the trace.
        """
        while True:
            replica = self._reserve()  # raises ShardUnavailableError when none left
            primary_fut, primary_sink = self._submit_attempt(
                dispatcher, replica, queries, k, at, sink, precision
            )
            try:
                out = primary_fut.result(timeout=deadline)
                self._fold_attempt(sink, primary_sink)
                return out
            except FutureTimeoutError:
                pass
            except ReplicaDeadError as death:
                self._fold_attempt(sink, primary_sink)
                self._count_dead_attempt(death)
                continue
            hedge_replica = self._reserve(exclude=replica)
            if hedge_replica is None:
                # No live peer to race; ride the slow attempt out.
                try:
                    out = primary_fut.result()
                    self._fold_attempt(sink, primary_sink)
                    return out
                except ReplicaDeadError as death:
                    self._fold_attempt(sink, primary_sink)
                    self._count_dead_attempt(death)
                    continue
            with self._lock:
                self.hedges += 1
            self._emit(
                "hedge_fired",
                replica=replica.replica_id,
                hedge_replica=hedge_replica.replica_id,
                deadline_s=deadline,
            )
            hedge_fut, hedge_sink = self._submit_attempt(
                dispatcher, hedge_replica, queries, k, at, sink, precision
            )
            attempts = [
                (primary_fut, replica, primary_sink),
                (hedge_fut, hedge_replica, hedge_sink),
            ]
            pending = {primary_fut, hedge_fut}
            winner = None
            out = None
            while pending and winner is None:
                done, _ = futures_wait(pending, return_when=FIRST_COMPLETED)
                # Deterministic preference: the primary attempt wins a
                # simultaneous finish, so hedge_wins counts true saves only.
                for fut, _rep, attempt_sink in attempts:
                    if fut not in done or fut not in pending:
                        continue
                    pending.discard(fut)
                    exc = fut.exception()
                    self._fold_attempt(sink, attempt_sink)
                    if exc is None:
                        winner = fut
                        out = fut.result()
                        break
                    if isinstance(exc, ReplicaDeadError):
                        self._count_dead_attempt(exc)
                        continue
                    self._discard([a for a in attempts if a[0] in pending], sink)
                    raise exc
            if winner is None:
                continue  # both attempts died; reserve afresh (or go loud)
            if winner is hedge_fut:
                with self._lock:
                    self.hedge_wins += 1
            self._discard([a for a in attempts if a[0] in pending], sink)
            return out

    def _submit_attempt(
        self,
        dispatcher: Dispatcher,
        replica: Replica,
        queries: np.ndarray,
        k: int,
        at: float | None,
        sink: SpanSink | None = None,
        precision: str | None = None,
    ):
        """Submit one replica-lane attempt: ``(future, attempt sink)``."""
        attempt_sink = SpanSink(self._clock) if sink is not None else None
        fut = dispatcher.submit_hedge(
            ShardCall(
                self.shard_id,
                self._run_attempt,
                (replica, queries, k, at, precision),
                sink=attempt_sink,
                label=f"replica_attempt r{replica.replica_id}",
                cat="replica_attempt",
            )
        )
        return fut, attempt_sink

    @staticmethod
    def _fold_attempt(sink: SpanSink | None, attempt_sink: SpanSink | None) -> None:
        """Move a resolved attempt's spans into the shard call's sink.

        Only legal after the attempt's future resolved in this thread:
        the future's own synchronisation orders the worker's last span
        write before this read.
        """
        if sink is not None and attempt_sink is not None:
            sink.extend(attempt_sink.spans)

    def _run_attempt(
        self,
        replica: Replica,
        queries: np.ndarray,
        k: int,
        at: float | None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Replica-lane body of one hedged attempt (always releases the
        reservation taken by :meth:`_reserve`)."""
        try:
            started = self._clock.monotonic()
            out = replica.answer(queries, k, at, precision)
            self._note_latency(self._clock.monotonic() - started)
            return out
        finally:
            # in_flight is the replica's own guarded state: reservations are
            # *picked* under the group lock but counted under the replica
            # lock, so replica-lane threads release without racing the pick.
            with replica._lock:
                replica.in_flight -= 1

    def _reserve(self, exclude: Replica | None = None) -> Optional[Replica]:
        """Atomically pick and reserve the least-loaded live replica.

        The pick key adds the reservation count to ``queries_served`` so a
        replica already running a slow attempt does not attract the hedge
        racing it.  With ``exclude`` set (hedge pick) a group with no other
        live replica returns ``None`` instead of raising — the caller rides
        out the original attempt.
        """
        with self._lock:
            alive = [r for r in self.replicas if r.alive and r is not exclude]
            if not alive:
                if exclude is not None:
                    return None
                raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
            best = min(alive, key=lambda r: (r.queries_served + r.in_flight, r.replica_id))
            with best._lock:
                best.in_flight += 1
            return best

    def _discard(
        self,
        losers: List[Tuple[object, Replica, SpanSink | None]],
        sink: SpanSink | None = None,
    ) -> None:
        """Cancel (or disown) losing hedge attempts.

        A successful cancel means the attempt never ran, so its reservation
        is released here; a running loser keeps its own accounting — it
        releases the reservation itself and reports a mid-flight death
        through the done callback.

        Tracing: a loser that already *resolved* is safe to fold (the
        future's synchronisation ordered the worker's span writes before
        this read); a loser still running gets an instant marker span
        written by this thread instead — its own sink stays untouched.
        """
        for fut, replica, attempt_sink in losers:
            if fut.cancel():
                with self._lock:
                    self.hedge_cancels += 1
                    with replica._lock:
                        replica.in_flight -= 1
                if sink is not None:
                    sink.instant(
                        f"replica_attempt r{replica.replica_id} cancelled",
                        "replica_attempt",
                        shard=self.shard_id,
                        replica=replica.replica_id,
                        cancelled=True,
                    )
                continue
            if fut.done():
                self._fold_attempt(sink, attempt_sink)
            elif sink is not None:
                sink.instant(
                    f"replica_attempt r{replica.replica_id} discarded",
                    "replica_attempt",
                    shard=self.shard_id,
                    replica=replica.replica_id,
                    discarded=True,
                )
            fut.add_done_callback(self._note_discarded)

    def _note_discarded(self, fut) -> None:
        if fut.cancelled():
            return
        exc = fut.exception()
        if isinstance(exc, ReplicaDeadError):
            self._count_dead_attempt(exc)

    def _count_dead_attempt(self, death: ReplicaDeadError) -> None:
        with self._lock:
            self.retries += 1
            if death.died_now:
                self.deaths += 1
        if death.died_now:
            self._emit("replica_death", died_now=True, retried=True)

    def note_death(self, replica_id: int | None = None) -> None:
        """Count one externally-injected replica death (fleet kill switch)."""
        with self._lock:
            self.deaths += 1
        self._emit("replica_death", replica=replica_id, died_now=True, injected=True)

    def _emit(self, kind: str, **fields) -> None:
        """Report one ops event (no-op without an event log attached).

        Never called while holding ``self._lock`` — the event log is a
        leaf lock and stays out of this group's acquisition order.
        """
        if self.events is not None:
            self.events.emit(kind, **fields)

    def _hedge_deadline(self) -> Optional[float]:
        """Current hedged-read deadline in seconds, or ``None`` when off."""
        spec = self.hedge_after
        if spec is None:
            return None
        if isinstance(spec, str):
            pct = float(spec.lstrip("pP"))
            with self._lock:
                if len(self._latencies) < _MIN_HEDGE_SAMPLES:
                    return None
                window = np.fromiter(self._latencies, dtype=np.float64, count=len(self._latencies))
            return float(np.percentile(window, pct))
        return float(spec)

    def _note_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    # ------------------------------------------------------------------
    # Mutation (applied to every live replica, keeping them identical)
    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray, ids: np.ndarray, at: float | None = None) -> None:
        """Insert into every live replica; loud when none is left.

        A mutation against a fully-dead shard must fail, not silently drop
        the data (there would be no peer to heal from).
        """
        if self.n_alive == 0:
            raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
        for replica in self.replicas:
            if replica.alive:
                replica.service.insert(points, ids=ids, at=at)

    def delete(self, ids: np.ndarray, at: float | None = None) -> None:
        """Delete from every live replica; loud when none is left."""
        if self.n_alive == 0:
            raise ShardUnavailableError(f"shard {self.shard_id}: every replica is dead")
        for replica in self.replicas:
            if replica.alive:
                replica.service.delete(ids, at=at)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def heal(self, at: float | None = None) -> int:
        """Re-seed every dead replica from a healthy peer; returns count.

        The donor's *live* arrays (tree minus tombstones plus delta) are
        refit into a fresh service carrying the dead replica's policies —
        a healed replica serves exactly the shard's live set from the first
        query on (its delta buffer starts empty, so only the unspecified
        identity of exactly-tied k-th neighbours can differ from a peer).
        """
        donor = self.primary()  # raises when the whole group is dead
        points, ids = donor.service.live_arrays()
        healed = 0
        for replica in self.replicas:
            if replica.alive:
                continue
            dead = replica.service
            # Cancel any in-flight background rebuild FIRST: its backend may
            # hold pooled-executor ownership (refit transfers it), and the
            # ownership must flow dead-bg -> dead.backend -> healed backend
            # before dead.close() runs, or the close would shut the pool
            # under the healed replica.
            dead.cancel_background()
            service = KNNService(
                dead.backend.refit(points, ids),
                k=dead.k,
                batch_policy=dead.batch_policy,
                rebuild_policy=dead.rebuild_policy,
                cache_capacity=dead.cache.capacity,
                retention=dead.records.capacity,
                service_time=dead._service_time,
                background_rebuild=dead.background_rebuild,
                snapshot_root=dead.snapshot_root,
                clock=dead._clock,
                events=dead.events,
            )
            if at is not None:
                # flush() on an empty queue is exactly a locked clock
                # advance (nothing is pending on a fresh service).
                service.flush(at)
            # The dead service's backend already transferred any pooled
            # executor ownership through refit above; closing it now only
            # releases what it still owns.
            dead.close()
            # Swap service and flip liveness atomically: a concurrent
            # attempt either sees (dead, old service) and raises, or
            # (alive, healed service) — never a half-healed replica.
            with replica._lock:
                replica.service = service
                replica.alive = True
                replica._armed_failure = False
            healed += 1
            self._emit(
                "replica_heal",
                replica=replica.replica_id,
                donor=donor.replica_id,
                points=int(np.asarray(ids).size),
            )
        return healed
