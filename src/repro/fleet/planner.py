"""Shard planning: cut a dataset into shard regions.

The paper's global kd-tree exists so each query touches only the ranks
whose regions can hold a neighbour; :class:`ShardPlanner` lifts the same
idea one level up, to a fleet of serving shards.  Three strategies:

* ``"tree"`` (default) — recursive median splits over the widest-variance
  dimension, exactly the shape of the top ``log2(n_shards)`` levels of the
  global kd-tree.  The resulting partition is expressed as a
  :class:`~repro.core.global_tree.GlobalTree` (one leaf per shard), which
  hands the router region boxes, the vectorised owner lookup and the exact
  box-distance pruning for free.
* ``"hash"`` — shard = ``id mod n_shards``.  Spreads load uniformly but
  carries no geometry, so the router cannot prune: every query fans out to
  every shard.
* ``"round_robin"`` — the i-th point ever assigned goes to shard
  ``i mod n_shards``.  Same non-spatial trade-off as ``"hash"``.

The non-spatial strategies are deliberate fallbacks (adversarial id
distributions, datasets with no usable geometry); the benchmark measures
the fan-out gap between them and the tree plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.global_tree import LEAF, GlobalTree, GlobalTreeNode

STRATEGIES = ("tree", "hash", "round_robin")


@dataclass
class ShardPlan:
    """A fixed assignment of points to shards, plus optional geometry.

    Attributes
    ----------
    n_shards:
        Number of shards.
    strategy:
        The :class:`ShardPlanner` strategy that produced the plan.
    assignment:
        ``(n,)`` shard index of every input point.
    region_tree:
        A :class:`~repro.core.global_tree.GlobalTree` with one leaf per
        shard (``"tree"`` strategy), or ``None`` when the plan has no
        geometry.
    """

    n_shards: int
    strategy: str
    assignment: np.ndarray
    region_tree: GlobalTree | None

    @property
    def supports_pruning(self) -> bool:
        """True when shard regions are boxes the router can prune against."""
        return self.region_tree is not None

    def owner_of(self, queries: np.ndarray) -> np.ndarray:
        """Shard whose region contains each query row (spatial plans only)."""
        if self.region_tree is None:
            raise ValueError(f"{self.strategy!r} plan has no regions; owner is undefined")
        return self.region_tree.owner_of(queries)

    def shards_within(
        self, queries: np.ndarray, radii: np.ndarray, owners: np.ndarray
    ) -> List[np.ndarray]:
        """Per query: the non-owner shards whose region box intersects the
        radius ball (the scatter set of the second phase).

        Reuses the exact box-distance logic the distributed query protocol
        uses for rank pruning; infinite radii intersect every shard.
        """
        if self.region_tree is None:
            raise ValueError(f"{self.strategy!r} plan has no regions; cannot prune")
        return self.region_tree.ranks_within_batch(queries, radii, owners)

    def scatter_targets(
        self, queries: np.ndarray, radii: np.ndarray, owners: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(rows, shards)`` scatter set of the second phase.

        The same intersection test as :meth:`shards_within`, but returned
        as two parallel row-major arrays (row ascending, shard ascending
        within a row) so the router can group rows by shard with one
        vectorised sort instead of a per-row Python loop.
        """
        if self.region_tree is None:
            raise ValueError(f"{self.strategy!r} plan has no regions; cannot prune")
        return self.region_tree.ranks_within_flat(queries, radii, owners)

    def assign(self, points: np.ndarray, ids: np.ndarray, n_assigned_before: int) -> np.ndarray:
        """Shard index for freshly inserted points.

        ``n_assigned_before`` is the total number of points the fleet ever
        assigned, which drives the ``"round_robin"`` cycle; the other
        strategies ignore it.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        ids = np.asarray(ids, dtype=np.int64)
        if self.strategy == "tree":
            return self.region_tree.owner_of(points)
        if self.strategy == "hash":
            return ids % self.n_shards
        return (n_assigned_before + np.arange(points.shape[0], dtype=np.int64)) % self.n_shards

    def shard_sizes(self) -> np.ndarray:
        """Points initially assigned to each shard."""
        return np.bincount(self.assignment, minlength=self.n_shards)


class ShardPlanner:
    """Cuts a dataset into ``n_shards`` shard regions.

    Parameters
    ----------
    n_shards:
        Number of shards to plan for (each must receive at least one point).
    strategy:
        ``"tree"``, ``"hash"`` or ``"round_robin"`` (see module docstring).
    """

    def __init__(self, n_shards: int, strategy: str = "tree") -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        self.n_shards = n_shards
        self.strategy = strategy

    def plan(self, points: np.ndarray, ids: np.ndarray | None = None) -> ShardPlan:
        """Assign every point to a shard; returns the immutable plan."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = points.shape[0]
        if n < self.n_shards:
            raise ValueError(f"cannot cut {n} points into {self.n_shards} shards")
        ids = np.arange(n, dtype=np.int64) if ids is None else np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != n:
            raise ValueError("ids length must match number of points")
        if self.strategy == "hash":
            return ShardPlan(self.n_shards, "hash", ids % self.n_shards, None)
        if self.strategy == "round_robin":
            assignment = np.arange(n, dtype=np.int64) % self.n_shards
            return ShardPlan(self.n_shards, "round_robin", assignment, None)
        assignment, tree = self._plan_tree(points)
        return ShardPlan(self.n_shards, "tree", assignment, tree)

    # ------------------------------------------------------------------
    # Tree strategy
    # ------------------------------------------------------------------
    def _plan_tree(self, points: np.ndarray) -> Tuple[np.ndarray, GlobalTree]:
        """Recursive median cuts, flattened into a one-leaf-per-shard tree."""
        n, dims = points.shape
        if self.n_shards == 1:
            return np.zeros(n, dtype=np.int64), GlobalTree.single_rank(dims)
        assignment = np.zeros(n, dtype=np.int64)
        nodes: List[GlobalTreeNode] = [GlobalTreeNode()]
        # Work queue of (shard group, node index, point indices).
        groups: List[Tuple[List[int], int, np.ndarray]] = [
            (list(range(self.n_shards)), 0, np.arange(n))
        ]
        while groups:
            shard_group, node_idx, idx = groups.pop()
            if len(shard_group) == 1:
                nodes[node_idx].rank = shard_group[0]
                nodes[node_idx].split_dim = LEAF
                assignment[idx] = shard_group[0]
                continue
            if idx.size < len(shard_group):
                # Duplicate-heavy cuts can starve a subgroup before any
                # single region is degenerate; diagnose it accurately.
                raise ValueError(
                    "degenerate point distribution left a shard empty; "
                    "use fewer shards or a non-spatial strategy"
                )
            n_left = (len(shard_group) + 1) // 2
            target = n_left / len(shard_group)
            dim, split_val, left_mask = self._split(points[idx], target)
            left_idx = len(nodes)
            nodes.append(GlobalTreeNode())
            right_idx = len(nodes)
            nodes.append(GlobalTreeNode())
            nodes[node_idx].split_dim = dim
            nodes[node_idx].split_val = split_val
            nodes[node_idx].left = left_idx
            nodes[node_idx].right = right_idx
            groups.append((shard_group[:n_left], left_idx, idx[left_mask]))
            groups.append((shard_group[n_left:], right_idx, idx[~left_mask]))
        tree = GlobalTree.from_nodes(nodes, n_ranks=self.n_shards, dims=dims)
        if np.bincount(assignment, minlength=self.n_shards).min() == 0:
            raise ValueError(
                "degenerate point distribution left a shard empty; "
                "use fewer shards or a non-spatial strategy"
            )
        return assignment, tree

    @staticmethod
    def _split(sub: np.ndarray, target: float) -> Tuple[int, float, np.ndarray]:
        """One median cut: widest-variance dimension, ``target`` mass left.

        Points exactly on the split value go left — the same ``<=`` rule as
        :meth:`GlobalTree.owner_of`, so assignment and lookup agree.  Falls
        back through dimensions by descending variance when duplicates make
        a dimension uncuttable (both sides must stay non-empty).
        """
        m = sub.shape[0]
        order_by_var = np.argsort(-sub.var(axis=0), kind="stable")
        for dim in order_by_var:
            coords = sub[:, dim]
            uniq = np.unique(coords)
            if uniq.size < 2:
                continue
            pos = int(np.clip(round(target * m), 1, m - 1))
            split_val = float(np.partition(coords, pos - 1)[pos - 1])
            if split_val >= uniq[-1]:
                # Every point would go left; cut below the maximum instead.
                split_val = float(uniq[-2])
            left_mask = coords <= split_val
            return int(dim), split_val, left_mask
        raise ValueError("all points in this region identical along every dimension; cannot cut it")
