"""Admission control: a bounded pending queue with shed/reject accounting.

A fleet serving heavy traffic must bound the work it promises: once the
pending queue is full, either the *newest* request is rejected outright
(``"reject"``, the default — callers get immediate backpressure) or the
*oldest* pending request is shed to admit the new one (``"shed"`` —
freshness wins, a stale queued request is the least valuable thing in the
building).  Both outcomes are counted and surfaced in the fleet-wide
statistics so overload is observable, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Admission verdicts returned by :meth:`AdmissionController.on_submit`.
ADMIT = "admit"
REJECT = "reject"
SHED = "shed"

_MODES = ("reject", "shed")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-queue parameters.

    Attributes
    ----------
    max_pending:
        Maximum requests the fleet may hold undispatched.
    mode:
        ``"reject"`` refuses the incoming request when full; ``"shed"``
        drops the oldest pending request and admits the incoming one.
    """

    max_pending: int = 1024
    mode: str = "reject"

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        if self.mode not in _MODES:
            raise ValueError(f"unknown admission mode {self.mode!r}; expected one of {_MODES}")


@dataclass
class AdmissionStats:
    """What happened to every request offered to the fleet."""

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    #: Peak pending-queue depth observed at submit time — the high-water
    #: mark that says how close to the ``max_pending`` cliff traffic ran.
    max_queue_depth: int = 0

    @property
    def offered(self) -> int:
        """Requests ever submitted (admitted + rejected; shed were admitted
        first and dropped later)."""
        return self.admitted + self.rejected

    def as_dict(self) -> Dict[str, float]:
        return {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "shed": float(self.shed),
            "max_queue_depth": float(self.max_queue_depth),
        }


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and keeps the books."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.stats = AdmissionStats()

    def on_submit(self, n_pending: int) -> str:
        """Verdict for one incoming request given the current queue depth.

        Returns :data:`ADMIT`, :data:`REJECT`, or :data:`SHED` (admit the
        new request, but the caller must drop its oldest pending one).
        """
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, n_pending)
        if n_pending < self.policy.max_pending:
            self.stats.admitted += 1
            return ADMIT
        if self.policy.mode == "reject":
            self.stats.rejected += 1
            return REJECT
        self.stats.shed += 1
        self.stats.admitted += 1
        return SHED
