"""Admission control: a bounded pending queue with shed/reject accounting.

A fleet serving heavy traffic must bound the work it promises: once the
pending queue is full, either the *newest* request is rejected outright
(``"reject"``, the default — callers get immediate backpressure) or the
*oldest* pending request is shed to admit the new one (``"shed"`` —
freshness wins, a stale queued request is the least valuable thing in the
building).  Both outcomes are counted and surfaced in the fleet-wide
statistics so overload is observable, never silent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict

from repro.analysis.runtime import guarded, new_lock

#: Admission verdicts returned by :meth:`AdmissionController.on_submit`.
ADMIT = "admit"
REJECT = "reject"
SHED = "shed"

_MODES = ("reject", "shed")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-queue parameters.

    Attributes
    ----------
    max_pending:
        Maximum requests the fleet may hold undispatched.
    mode:
        ``"reject"`` refuses the incoming request when full; ``"shed"``
        drops the oldest pending request and admits the incoming one.
    """

    max_pending: int = 1024
    mode: str = "reject"

    def __post_init__(self) -> None:
        if self.max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {self.max_pending}")
        if self.mode not in _MODES:
            raise ValueError(f"unknown admission mode {self.mode!r}; expected one of {_MODES}")


def _new_stats_lock() -> threading.Lock:
    return new_lock("AdmissionStats._lock")


@guarded
@dataclass
class AdmissionStats:
    """What happened to every request offered to the fleet."""

    GUARDED_BY = {
        "admitted": "_lock",
        "rejected": "_lock",
        "shed": "_lock",
        "max_queue_depth": "_lock",
    }

    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    #: Peak pending-queue depth observed at submit time — the high-water
    #: mark that says how close to the ``max_pending`` cliff traffic ran.
    max_queue_depth: int = 0
    _lock: threading.Lock = field(default_factory=_new_stats_lock, repr=False)

    def note(self, verdict: str, n_pending: int) -> None:
        """Record one admission verdict atomically."""
        with self._lock:
            self.max_queue_depth = max(self.max_queue_depth, n_pending)
            if verdict == REJECT:
                self.rejected += 1
                return
            self.admitted += 1
            if verdict == SHED:
                self.shed += 1

    @property
    def offered(self) -> int:
        """Requests ever submitted (admitted + rejected; shed were admitted
        first and dropped later)."""
        with self._lock:
            return self.admitted + self.rejected

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "offered": float(self.admitted + self.rejected),
                "admitted": float(self.admitted),
                "rejected": float(self.rejected),
                "shed": float(self.shed),
                "max_queue_depth": float(self.max_queue_depth),
            }


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` and keeps the books."""

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy or AdmissionPolicy()
        self.stats = AdmissionStats()

    def on_submit(self, n_pending: int) -> str:
        """Verdict for one incoming request given the current queue depth.

        Returns :data:`ADMIT`, :data:`REJECT`, or :data:`SHED` (admit the
        new request, but the caller must drop its oldest pending one).
        """
        if n_pending < self.policy.max_pending:
            verdict = ADMIT
        elif self.policy.mode == "reject":
            verdict = REJECT
        else:
            verdict = SHED
        self.stats.note(verdict, n_pending)
        return verdict
