"""Region-routed scatter-gather across the shard fleet.

The router answers a query batch in the two phases of the paper's
distributed query protocol, lifted from ranks to shards:

1. **Owner phase** — each query goes to the shard whose region contains it
   (one batched call per owner shard, served by the group's least-loaded
   replica).  The owner's k-th neighbour distance r' bounds where any
   better neighbour can hide.
2. **Scatter phase** — the query fans out *only* to shards whose region box
   intersects the r' ball (:meth:`ShardPlan.shards_within`, the exact
   box-distance pruning of the rank protocol), again batched per shard.
   Results fold in with one vectorised sorted merge per shard call
   (semantically :func:`~repro.kdtree.heap.merge_topk` minus the
   duplicate-id handling, which disjoint shards cannot need).

Because every shard answers its own live set exactly and any point not in
a visited shard lies beyond r' (which is itself >= the true k-th distance),
the merged answer equals a single unsharded service's answer — identical
distances, with only the identity of exactly-tied k-th neighbours
unspecified, as everywhere else in this codebase.

Plans without geometry (hash / round-robin) broadcast every query to every
shard: still exact, never pruned.  :class:`RouterStats` records the
measured fan-out so the benchmark can show the pruning win on clustered
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.fleet.planner import ShardPlan
from repro.fleet.replica import ReplicaGroup


@dataclass
class RouterStats:
    """Fan-out accounting across every routed query."""

    queries: int = 0
    shard_visits: int = 0
    owner_only: int = 0
    broadcasts: int = 0

    @property
    def mean_fanout(self) -> float:
        """Mean shards visited per query (n_shards when never pruned)."""
        return self.shard_visits / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": float(self.queries),
            "shard_visits": float(self.shard_visits),
            "mean_fanout": self.mean_fanout,
            "owner_only": float(self.owner_only),
            "broadcasts": float(self.broadcasts),
        }


class Router:
    """Pruned scatter-gather over a fixed plan and its replica groups."""

    def __init__(self, plan: ShardPlan, groups: Sequence[ReplicaGroup]) -> None:
        if len(groups) != plan.n_shards:
            raise ValueError(f"plan has {plan.n_shards} shards, got {len(groups)} groups")
        self.plan = plan
        self.groups = list(groups)
        self.stats = RouterStats()

    def answer(
        self, queries: np.ndarray, k: int, at: float | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact fleet-wide ``(distances, ids)`` for a query batch."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = queries.shape[0]
        if n == 0:
            return (
                np.full((0, k), np.inf, dtype=np.float64),
                np.full((0, k), -1, dtype=np.int64),
            )
        self.stats.queries += n
        if not self.plan.supports_pruning:
            return self._broadcast(queries, k, at)
        return self._scatter_gather(queries, k, at)

    # ------------------------------------------------------------------
    # Non-spatial fallback: everyone answers everything
    # ------------------------------------------------------------------
    def _broadcast(
        self, queries: np.ndarray, k: int, at: float | None
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = queries.shape[0]
        self.stats.shard_visits += n * len(self.groups)
        self.stats.broadcasts += n
        acc_d = np.full((n, k), np.inf, dtype=np.float64)
        acc_i = np.full((n, k), -1, dtype=np.int64)
        for group in self.groups:
            d, i = group.answer(queries, k, at)
            acc_d, acc_i = _merge_rows(k, acc_d, acc_i, np.arange(n), d, i)
        return acc_d, acc_i

    # ------------------------------------------------------------------
    # Region-routed two-phase protocol
    # ------------------------------------------------------------------
    def _scatter_gather(
        self, queries: np.ndarray, k: int, at: float | None
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = queries.shape[0]
        owners = self.plan.owner_of(queries)
        acc_d = np.full((n, k), np.inf, dtype=np.float64)
        acc_i = np.full((n, k), -1, dtype=np.int64)

        # Phase 1: one batched owner call per shard that owns queries.
        for shard in np.unique(owners):
            rows = np.flatnonzero(owners == shard)
            d, i = self.groups[shard].answer(queries[rows], k, at)
            acc_d[rows] = d
            acc_i[rows] = i
        self.stats.shard_visits += n

        # Phase 2: fan out only where the r' ball crosses a region box.
        # r' is the owner's k-th distance; underfull owners (fewer than k
        # in-shard neighbours) leave r' infinite and fan out everywhere.
        radii = acc_d[:, k - 1]
        remote = self.plan.shards_within(queries, radii, owners)
        rows_for_shard: Dict[int, List[int]] = {}
        for row, shards in enumerate(remote):
            if shards.size == 0:
                self.stats.owner_only += 1
            for shard in shards:
                rows_for_shard.setdefault(int(shard), []).append(row)
        for shard, row_list in sorted(rows_for_shard.items()):
            rows = np.array(row_list, dtype=np.int64)
            d, i = self.groups[shard].answer(queries[rows], k, at)
            acc_d, acc_i = _merge_rows(k, acc_d, acc_i, rows, d, i)
            self.stats.shard_visits += rows.size
        return acc_d, acc_i


def _merge_rows(
    k: int,
    acc_d: np.ndarray,
    acc_i: np.ndarray,
    rows: np.ndarray,
    new_d: np.ndarray,
    new_i: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold per-shard answers for ``rows`` into the accumulators.

    One vectorised sorted merge for the whole shard call (the same pattern
    as the service's delta fusion).  Shards partition the id space and each
    shard filters its own tombstones, so — unlike the rank protocol's
    :func:`~repro.kdtree.heap.merge_topk` — no duplicate-id handling is
    needed: an id can be live in at most one shard.
    """
    all_d = np.concatenate([acc_d[rows], new_d], axis=1)
    all_i = np.concatenate([acc_i[rows], new_i], axis=1)
    all_d = np.where(all_i >= 0, all_d, np.inf)
    order = np.argsort(all_d, axis=1, kind="stable")[:, :k]
    out_d = np.take_along_axis(all_d, order, axis=1)
    out_i = np.take_along_axis(all_i, order, axis=1)
    acc_d[rows] = out_d
    acc_i[rows] = np.where(np.isfinite(out_d), out_i, -1)
    return acc_d, acc_i
