"""Region-routed scatter-gather across the shard fleet.

The router answers a query batch in the two phases of the paper's
distributed query protocol, lifted from ranks to shards:

1. **Owner phase** — each query goes to the shard whose region contains it
   (one batched call per owner shard, served by the group's least-loaded
   replica).  The owner's k-th neighbour distance r' bounds where any
   better neighbour can hide.
2. **Scatter phase** — the query fans out *only* to shards whose region box
   intersects the r' ball (:meth:`ShardPlan.scatter_targets`, the exact
   box-distance pruning of the rank protocol), again batched per shard.
   Results fold in with one vectorised sorted merge per shard call
   (:func:`~repro.kdtree.heap.merge_topk_rows` without duplicate-id
   handling, which disjoint shards cannot need).

Every shard call is a :class:`~repro.fleet.dispatch.ShardCall` submitted
through a pluggable :class:`~repro.fleet.dispatch.Dispatcher`.  Under the
default :class:`~repro.fleet.dispatch.SerialDispatcher` calls execute at
submit time, in submission order — provably the historical call sequence.
Under a concurrent dispatcher all owner calls run at once and each owner's
scatter calls are submitted the moment that owner completes (no barrier on
the whole batch).  Answers cannot differ between the two: batch answers are
row-independent, each row's scatter results fold in ascending shard order
either way, and every merge into the accumulators happens in the
submitting thread — so the bytes are identical whichever dispatcher runs
the calls.

Because every shard answers its own live set exactly and any point not in
a visited shard lies beyond r' (which is itself >= the true k-th distance),
the merged answer equals a single unsharded service's answer — identical
distances, with only the identity of exactly-tied k-th neighbours
unspecified, as everywhere else in this codebase.

Plans without geometry (hash / round-robin) broadcast every query to every
shard: still exact, never pruned.  :class:`RouterStats` records the
measured fan-out and per-phase wall time so the benchmark can show the
pruning win on clustered data and the overlap win on slow shards.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.annotations import exactness_path
from repro.fleet.dispatch import Dispatcher, SerialDispatcher, ShardCall
from repro.fleet.planner import ShardPlan
from repro.fleet.replica import ReplicaGroup
from repro.kdtree.heap import merge_topk_rows
from repro.obs.clock import MONOTONIC, Clock
from repro.obs.profiler import phase
from repro.obs.tracing import Span, SpanSink


@dataclass
class RouterStats:
    """Fan-out and phase-timing accounting across every routed query."""

    queries: int = 0
    shard_visits: int = 0
    owner_only: int = 0
    broadcasts: int = 0
    #: Wall seconds spent in the owner phase (submitting and harvesting
    #: owner calls).  Broadcasts have no owner phase.
    owner_seconds: float = 0.0
    #: Wall seconds spent in the scatter phase (and in broadcasts, which
    #: are all fan-out).
    scatter_seconds: float = 0.0

    @property
    def mean_fanout(self) -> float:
        """Mean shards visited per query (n_shards when never pruned)."""
        return self.shard_visits / self.queries if self.queries else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "queries": float(self.queries),
            "shard_visits": float(self.shard_visits),
            "mean_fanout": self.mean_fanout,
            "owner_only": float(self.owner_only),
            "broadcasts": float(self.broadcasts),
            "owner_seconds": float(self.owner_seconds),
            "scatter_seconds": float(self.scatter_seconds),
        }


class Router:
    """Pruned scatter-gather over a fixed plan and its replica groups.

    ``dispatcher`` carries every shard call; the router does not own it
    (the fleet — or the caller — closes it).  ``None`` falls back to a
    private :class:`SerialDispatcher`, which is free to leave unclosed.
    """

    def __init__(
        self,
        plan: ShardPlan,
        groups: Sequence[ReplicaGroup],
        dispatcher: Dispatcher | None = None,
        clock: Clock | None = None,
    ) -> None:
        if len(groups) != plan.n_shards:
            raise ValueError(f"plan has {plan.n_shards} shards, got {len(groups)} groups")
        self.plan = plan
        self.groups = list(groups)
        self.dispatcher = dispatcher if dispatcher is not None else SerialDispatcher()
        self._clock = clock if clock is not None else MONOTONIC
        self.stats = RouterStats()

    def answer(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None = None,
        trace: SpanSink | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact fleet-wide ``(distances, ids)`` for a query batch.

        ``trace`` (a sampled batch's span sink) collects the phase spans,
        per-shard call spans and merge spans of this batch; ``None`` —
        the untraced common case — records nothing.  ``precision`` rides
        into every shard call of the batch (owner and scatter alike); the
        certified tiers make the merged answer byte-invariant to it.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n = queries.shape[0]
        if n == 0:
            return (
                np.full((0, k), np.inf, dtype=np.float64),
                np.full((0, k), -1, dtype=np.int64),
            )
        self.stats.queries += n
        if not self.plan.supports_pruning:
            return self._broadcast(queries, k, at, trace, precision)
        return self._scatter_gather(queries, k, at, trace, precision)

    def _submit(
        self,
        shard: int,
        queries: np.ndarray,
        k: int,
        at: float | None,
        trace: SpanSink | None = None,
        label: str = "",
        precision: str | None = None,
    ):
        """One shard call on the dispatch plane: ``(future, call sink)``.

        The dispatcher rides along into :meth:`ReplicaGroup.answer` so the
        group can hedge its replica attempts on the replica lane.  When
        the batch is traced, the call gets a private sink the executing
        worker records into; the harvester folds it into ``trace`` after
        the future resolves.
        """
        sink = SpanSink(self._clock) if trace is not None else None
        fut = self.dispatcher.submit(
            ShardCall(
                shard,
                self.groups[shard].answer,
                (queries, k, at, self.dispatcher, sink, precision),
                sink=sink,
                label=label or f"shard_call shard{shard}",
            )
        )
        return fut, sink

    @staticmethod
    def _settle(futures) -> None:
        """Cancel-and-drain outstanding shard calls before re-raising.

        Nothing may still be running when the error propagates: the fleet
        rolls back router stats and per-replica load on failure, and that
        rollback must not race live workers.
        """
        for fut in futures:
            fut.cancel()
        if futures:
            futures_wait(list(futures))

    # ------------------------------------------------------------------
    # Non-spatial fallback: everyone answers everything
    # ------------------------------------------------------------------
    @exactness_path
    def _broadcast(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None,
        trace: SpanSink | None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = queries.shape[0]
        self.stats.shard_visits += n * len(self.groups)
        self.stats.broadcasts += n
        acc_d = np.full((n, k), np.inf, dtype=np.float64)
        acc_i = np.full((n, k), -1, dtype=np.int64)
        mark = trace.mark() if trace is not None else 0
        started = self._clock.monotonic()
        calls: List[tuple] = []
        try:
            with phase("router.broadcast"):
                for shard in range(len(self.groups)):
                    calls.append(self._submit(shard, queries, k, at, trace, precision=precision))
                # Harvest in submission (= ascending shard) order: the fold
                # order fixes which exactly-tied id survives, so it must match
                # the serial sequence bit for bit.
                for pos, (fut, sink) in enumerate(calls):
                    d, i = fut.result()
                    calls[pos] = (None, sink)
                    if trace is not None:
                        trace.extend(sink.spans)
                    merge_t0 = self._clock.monotonic()
                    acc_d, acc_i = merge_topk_rows(k, acc_d, acc_i, d, i)
                    if trace is not None:
                        trace.add(
                            Span(
                                f"merge shard{pos}",
                                "merge",
                                merge_t0,
                                self._clock.monotonic(),
                                {"shard": pos, "rows": int(n)},
                            )
                        )
        except BaseException:
            self._settle([fut for fut, _ in calls if fut is not None])
            raise
        ended = self._clock.monotonic()
        self.stats.scatter_seconds += ended - started
        if trace is not None:
            trace.fold(
                mark,
                "broadcast_phase",
                "phase",
                started,
                ended,
                shards=len(self.groups),
                queries=int(n),
            )
        return acc_d, acc_i

    # ------------------------------------------------------------------
    # Region-routed two-phase protocol
    # ------------------------------------------------------------------
    @exactness_path
    def _scatter_gather(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None,
        trace: SpanSink | None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = queries.shape[0]
        owners = self.plan.owner_of(queries)
        acc_d = np.full((n, k), np.inf, dtype=np.float64)
        acc_i = np.full((n, k), -1, dtype=np.int64)

        # Phase 1: one batched owner call per shard that owns queries, all
        # submitted up front.  Each owner's scatter calls go out the moment
        # that owner completes — no barrier on the whole batch, so a slow
        # owner shard cannot hold back every other row's phase 2.
        owner_mark = trace.mark() if trace is not None else 0
        started = self._clock.monotonic()
        scatter_elapsed = 0.0
        # future -> (global rows, call sink)
        pending: Dict[object, Tuple[np.ndarray, object]] = {}
        # (shard, submit sequence, global rows, future, call sink):
        # harvested sorted by shard so each row's fold stays in ascending
        # shard order.
        scatter_calls: List[Tuple[int, int, np.ndarray, object, object]] = []
        seq = 0
        try:
            with phase("router.owner"):
                for shard in np.unique(owners):
                    rows = np.flatnonzero(owners == shard)
                    fut, sink = self._submit(
                        int(shard), queries[rows], k, at, trace,
                        label=f"owner_call shard{int(shard)}",
                        precision=precision,
                    )
                    pending[fut] = (rows, sink)
                self.stats.shard_visits += n
                while pending:
                    done, _ = futures_wait(set(pending), return_when=FIRST_COMPLETED)
                    for fut in done:
                        rows, sink = pending.pop(fut)
                        d, i = fut.result()
                        if trace is not None:
                            trace.extend(sink.spans)
                        acc_d[rows] = d
                        acc_i[rows] = i
                        # Phase 2 for this owner's rows: fan out only where the
                        # r' ball (owner's k-th distance; infinite when the
                        # owner held fewer than k) crosses a region box.
                        t_scatter = self._clock.monotonic()
                        seq = self._submit_scatter(
                            queries, k, at, rows, owners[rows], acc_d[rows, k - 1],
                            scatter_calls, seq, trace, precision,
                        )
                        scatter_elapsed += self._clock.monotonic() - t_scatter
            owner_ended = self._clock.monotonic()
            self.stats.owner_seconds += owner_ended - started - scatter_elapsed
            if trace is not None:
                trace.fold(
                    mark=owner_mark,
                    name="owner_phase",
                    cat="phase",
                    start=started,
                    end=owner_ended,
                    queries=int(n),
                )

            # Harvest scatter calls sorted by shard (submission order breaks
            # ties): a row's scatter set folds in ascending shard order —
            # the same per-row sequence as a whole-batch-per-shard sweep —
            # while calls targeting the same shard have disjoint rows.
            scatter_mark = trace.mark() if trace is not None else 0
            started = self._clock.monotonic()
            with phase("router.scatter"):
                scatter_calls.sort(key=lambda c: (c[0], c[1]))
                for pos, (_shard, _seq, rows, fut, sink) in enumerate(scatter_calls):
                    d, i = fut.result()
                    scatter_calls[pos] = (_shard, _seq, rows, None, sink)
                    if trace is not None:
                        trace.extend(sink.spans)
                    merge_t0 = self._clock.monotonic()
                    out_d, out_i = merge_topk_rows(k, acc_d[rows], acc_i[rows], d, i)
                    acc_d[rows] = out_d
                    acc_i[rows] = out_i
                    if trace is not None:
                        trace.add(
                            Span(
                                f"merge shard{_shard}",
                                "merge",
                                merge_t0,
                                self._clock.monotonic(),
                                {"shard": int(_shard), "rows": int(rows.size)},
                            )
                        )
            scatter_ended = self._clock.monotonic()
            if trace is not None:
                trace.fold(
                    mark=scatter_mark,
                    name="scatter_phase",
                    cat="phase",
                    start=started,
                    end=scatter_ended,
                    calls=len(scatter_calls),
                )
        except BaseException:
            self._settle(
                list(pending) + [c[3] for c in scatter_calls if c[3] is not None]
            )
            raise
        self.stats.scatter_seconds += scatter_elapsed + scatter_ended - started
        return acc_d, acc_i

    @exactness_path
    def _submit_scatter(
        self,
        queries: np.ndarray,
        k: int,
        at: float | None,
        rows: np.ndarray,
        sub_owners: np.ndarray,
        radii: np.ndarray,
        scatter_calls: List[Tuple[int, int, np.ndarray, object, object]],
        seq: int,
        trace: SpanSink | None = None,
        precision: str | None = None,
    ) -> int:
        """Group one owner's rows by scatter shard and submit the calls.

        The grouping is one vectorised stable sort over the flat
        ``(rows, shards)`` intersection set — no per-row Python loop.
        """
        sub_rows, sub_shards = self.plan.scatter_targets(queries[rows], radii, sub_owners)
        self.stats.owner_only += int(rows.size - np.unique(sub_rows).size)
        if sub_rows.size == 0:
            return seq
        order = np.argsort(sub_shards, kind="stable")
        sorted_shards = sub_shards[order]
        sorted_rows = sub_rows[order]
        shards, starts = np.unique(sorted_shards, return_index=True)
        bounds = np.append(starts, sorted_rows.size)
        for j, shard in enumerate(shards):
            group_rows = rows[sorted_rows[starts[j]:bounds[j + 1]]]
            fut, sink = self._submit(
                int(shard), queries[group_rows], k, at, trace,
                label=f"scatter_call shard{int(shard)}",
                precision=precision,
            )
            scatter_calls.append((int(shard), seq, group_rows, fut, sink))
            seq += 1
            self.stats.shard_visits += int(group_rows.size)
        return seq
