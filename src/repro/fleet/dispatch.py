"""Concurrent dispatch plane: how shard and replica calls actually run.

Every serving call of the fleet — owner-phase lookups, scatter-phase
fan-out, hedged replica reads, pipelined service micro-batches — is a
:class:`ShardCall` work item submitted to a pluggable :class:`Dispatcher`
that returns a future.  Two dispatchers ship:

* :class:`SerialDispatcher` — the default.  ``submit`` executes the call
  immediately in the calling thread and returns an already-resolved
  future, so submission order *is* execution order and an exception
  propagates at the submit site — provably the historical synchronous
  call order of the pre-dispatch router.
* :class:`ThreadDispatcher` — a bounded pool layered on the
  :mod:`repro.cluster.executor` backends (a
  :class:`~repro.cluster.executor.ThreadExecutor` by default).  Shard
  calls run concurrently; callers consume futures in deterministic
  submission order, which is what keeps threaded answers byte-identical
  to serial ones.  A second, independent *replica lane* carries the
  per-replica attempts of hedged reads, so a shard-lane worker blocked
  waiting on a replica future can never deadlock the pool (replica-lane
  tasks are leaves: they call straight into a service and submit nothing).

The dispatch-site rule that makes concurrency exact: workers only ever
*compute* (pure reads of immutable snapshots or lock-guarded services);
every merge into shared accumulators happens in the submitting thread, in
submission order.  Answers therefore cannot depend on completion order —
only wall-clock does.

``REPRO_DISPATCHER`` (``serial`` | ``thread`` | ``thread:N``) selects the
fleet-wide default when no dispatcher is configured explicitly, which is
how CI runs the whole fleet/service suite under concurrent dispatch.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.analysis.runtime import guarded, new_lock
from repro.cluster.executor import (
    InlineExecutor,
    RankExecutor,
    RankTask,
    ThreadExecutor,
    make_executor,
)
from repro.obs.profiler import phase

#: Environment variable selecting the default dispatcher spec.
DISPATCHER_ENV = "REPRO_DISPATCHER"


@dataclass
class ShardCall:
    """One unit of serving work bound for a shard (or replica).

    Attributes
    ----------
    shard:
        Shard id the call belongs to (progress accounting and debugging;
        hedged replica attempts reuse their shard's id).
    fn:
        The callable doing the work (``ReplicaGroup.answer``, a replica
        attempt, a pipelined micro-batch step).
    args:
        Positional arguments for ``fn``.
    tag:
        Optional caller correlation (e.g. the query rows a scatter call
        answers); the dispatcher carries it untouched.
    sink:
        Optional :class:`~repro.obs.tracing.SpanSink` riding with the
        call.  When set, whichever worker executes the call records a
        timed span into it (the sink's single writer until the future
        resolves); the submitting thread folds the sink into the batch
        trace at harvest.  ``None`` (the default, and always the case
        when tracing is off) costs nothing.
    label / cat:
        Span name and category used when ``sink`` is set.
    """

    shard: int
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    tag: Any = None
    sink: Any = None
    label: str = ""
    cat: str = "shard_call"


def _new_stats_lock() -> threading.Lock:
    return new_lock("DispatchStats._lock")


@guarded
@dataclass
class DispatchStats:
    """Counters of one dispatcher instance (thread-safe to update).

    ``submitted``/``completed``/``failed``/``cancelled`` cover the shard
    lane; ``hedge_submitted`` counts replica-lane attempts (primary and
    hedge reads both travel that lane).  ``max_queue_depth`` is the peak
    number of shard calls in flight at once — 1 under serial dispatch,
    up to the pool width under concurrent dispatch.
    """

    GUARDED_BY = {
        "submitted": "_lock",
        "completed": "_lock",
        "failed": "_lock",
        "cancelled": "_lock",
        "hedge_submitted": "_lock",
        "queue_depth": "_lock",
        "max_queue_depth": "_lock",
    }

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    hedge_submitted: int = 0
    queue_depth: int = 0
    max_queue_depth: int = 0
    _lock: threading.Lock = field(default_factory=_new_stats_lock, repr=False)

    def note_submit(self, hedge: bool = False) -> None:
        with self._lock:
            if hedge:
                self.hedge_submitted += 1
                return
            self.submitted += 1
            self.queue_depth += 1
            self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)

    def note_done(self, outcome: str) -> None:
        with self._lock:
            self.queue_depth -= 1
            if outcome == "completed":
                self.completed += 1
            elif outcome == "failed":
                self.failed += 1
            else:
                self.cancelled += 1

    def as_dict(self) -> Dict[str, float]:
        with self._lock:
            return {
                "submitted": float(self.submitted),
                "completed": float(self.completed),
                "failed": float(self.failed),
                "cancelled": float(self.cancelled),
                "hedge_submitted": float(self.hedge_submitted),
                "max_queue_depth": float(self.max_queue_depth),
            }


class Dispatcher:
    """Interface every dispatcher implements (see module docstring)."""

    #: Short identifier used in reprs, stats and ``make_dispatcher``.
    name: str = "abstract"
    #: True when submitted calls may run concurrently with the caller.
    #: Hedged reads require it (a serial dispatcher cannot race replicas).
    concurrent: bool = False

    def __init__(self) -> None:
        self.stats = DispatchStats()

    def submit(self, call: ShardCall) -> Future:
        """Submit a shard-lane call; returns its future.

        Serial dispatchers execute the call before returning (exceptions
        propagate here); concurrent ones surface exceptions at
        ``future.result()``.
        """
        raise NotImplementedError

    def submit_hedge(self, call: ShardCall) -> Future:
        """Submit a replica-lane call (hedged-read attempts).

        The replica lane is independent of the shard lane so a shard-lane
        worker waiting on a replica future can never starve it.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker pools (idempotent)."""

    def __enter__(self) -> "Dispatcher":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def _run_call(call: ShardCall) -> Any:
    """Execute a shard call, recording its span when a sink rides along.

    Runs in whichever thread the dispatcher picked; the call's sink (if
    any) is private to this execution until the future resolves, so the
    span writes need no lock.  Spans the callee added to the sink while
    running (e.g. replica attempts under a shard call) fold in as
    children of this call's span.
    """
    sink = call.sink
    if sink is None:
        with phase("dispatch." + call.cat):
            return call.fn(*call.args)
    clock = sink.clock
    mark = sink.mark()
    started = clock.monotonic()
    try:
        with phase("dispatch." + call.cat):
            result = call.fn(*call.args)
    except BaseException as exc:
        sink.fold(
            mark,
            call.label or f"shard{call.shard}",
            call.cat,
            started,
            clock.monotonic(),
            shard=call.shard,
            ok=False,
            error=type(exc).__name__,
        )
        raise
    sink.fold(
        mark,
        call.label or f"shard{call.shard}",
        call.cat,
        started,
        clock.monotonic(),
        shard=call.shard,
        ok=True,
    )
    return result


def _resolved_future(stats: DispatchStats, call: ShardCall, hedge: bool) -> Future:
    """Execute ``call`` now; return a completed future or raise (shard lane)."""
    stats.note_submit(hedge=hedge)
    fut: Future = Future()
    try:
        result = _run_call(call)
    except BaseException as exc:
        if not hedge:
            stats.note_done("failed")
            # Serial semantics: the failure happens AT the call site, before
            # any later call runs — exactly the historical synchronous order.
            raise
        fut.set_exception(exc)
        return fut
    if not hedge:
        stats.note_done("completed")
    fut.set_result(result)
    return fut


class SerialDispatcher(Dispatcher):
    """Execute every call synchronously at submit time (the default).

    Submission order is execution order and ``submit`` raises the call's
    exception directly, so a fleet on this dispatcher is observably the
    pre-dispatch-plane code: same call sequence, same failure points, same
    replica load accounting.
    """

    name = "serial"
    concurrent = False

    def submit(self, call: ShardCall) -> Future:
        return _resolved_future(self.stats, call, hedge=False)

    def submit_hedge(self, call: ShardCall) -> Future:
        # Hedging is pointless without concurrency, but the lane must still
        # work (a ReplicaGroup handed a serial dispatcher degrades cleanly).
        return _resolved_future(self.stats, call, hedge=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialDispatcher()"


def _dispatch_step(state: Any, hook: Optional[Callable[[int], None]], call: ShardCall) -> Any:
    """Executor step wrapping one shard call (module-level for RankTask)."""
    if hook is not None:
        hook(state.rank)
    return _run_call(call)


@guarded
class ThreadDispatcher(Dispatcher):
    """Bounded concurrent dispatch on the cluster executor backends.

    Parameters
    ----------
    n_workers:
        Shard-lane pool width (defaults to the executor backend's default).
    executor:
        The shard-lane :class:`~repro.cluster.executor.RankExecutor` (or a
        ``make_executor`` spec).  Must be thread-based — shard calls close
        over live service objects, which a process pool could neither
        pickle nor share.
    call_hook:
        Optional ``hook(shard_id)`` invoked in the worker immediately
        before each *shard-lane* call runs.  Tests use it with barriers to
        pin down exact interleavings; the replica lane is never hooked so
        hedged attempts cannot deadlock against a test barrier.
    """

    name = "thread"
    concurrent = True

    GUARDED_BY = {"_closed": "_lock"}

    def __init__(
        self,
        n_workers: int | None = None,
        executor: "RankExecutor | str | None" = None,
        call_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        super().__init__()
        if executor is None:
            executor = ThreadExecutor(n_workers)
        else:
            executor = make_executor(executor, n_workers)
        if not isinstance(executor, (ThreadExecutor, InlineExecutor)):
            raise TypeError(
                f"ThreadDispatcher needs a thread-based executor, got {executor.name!r} "
                "(shard calls hold live service objects a process pool cannot share)"
            )
        self.concurrent = not isinstance(executor, InlineExecutor)
        self._executor = executor
        # Replica lane: independent leaf pool for hedged-read attempts.  One
        # shard call can hold at most two replica attempts (primary + hedge),
        # so 2x the shard width can never be the bottleneck.
        width = getattr(executor, "n_workers", 2) or 2
        self._replica_lane = ThreadExecutor(max(2, 2 * width))
        self._call_hook = call_hook
        self._lock = new_lock("ThreadDispatcher._lock")
        self._closed = False

    @property
    def n_workers(self) -> int:
        return getattr(self._executor, "n_workers", 1)

    def _submit_lane(self, lane: RankExecutor, call: ShardCall, hedge: bool) -> Future:
        with self._lock:
            if self._closed:
                raise RuntimeError("dispatcher is closed")
        hook = None if hedge else self._call_hook
        task = RankTask(call.shard, _dispatch_step, (hook, call))
        self.stats.note_submit(hedge=hedge)
        fut = lane.submit(task)
        if not hedge:
            fut.add_done_callback(self._note_shard_done)
        return fut

    def _note_shard_done(self, fut: Future) -> None:
        if fut.cancelled():
            self.stats.note_done("cancelled")
        elif fut.exception() is not None:
            self.stats.note_done("failed")
        else:
            self.stats.note_done("completed")

    def submit(self, call: ShardCall) -> Future:
        return self._submit_lane(self._executor, call, hedge=False)

    def submit_hedge(self, call: ShardCall) -> Future:
        return self._submit_lane(self._replica_lane, call, hedge=True)

    def close(self) -> None:
        # Check-and-set under the lock, pool shutdown outside it: repeated
        # and concurrent closes are no-ops, and no lock is held while
        # waiting on workers (the executors serialise their own teardown).
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.close()
        self._replica_lane.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ThreadDispatcher(n_workers={self.n_workers})"


def default_dispatcher_spec() -> str:
    """The fleet-wide default dispatcher spec (``REPRO_DISPATCHER`` or serial)."""
    return os.environ.get(DISPATCHER_ENV, "serial")


#: Spelled out in every spec error so a typo'd ``REPRO_DISPATCHER`` tells
#: the user what would have worked.
_ACCEPTED_SPECS = "'serial', 'thread', or 'thread:N' with N a positive integer"

_SERIAL_KINDS = ("serial", "sync", "")
_THREAD_KINDS = ("thread", "threads", "threaded")


def make_dispatcher(
    spec: "str | Dispatcher | None" = None, n_workers: int | None = None
) -> Dispatcher:
    """Build a dispatcher from a spec.

    ``None`` consults ``REPRO_DISPATCHER`` (falling back to serial);
    ``"serial"`` / ``"thread"`` / ``"thread:4"`` build fresh instances; an
    existing dispatcher passes through (the caller keeps ownership).
    Malformed specs raise a :class:`ValueError` naming the accepted forms
    (and the environment variable, when that is where the spec came from).
    """
    if isinstance(spec, Dispatcher):
        return spec
    origin = "dispatcher spec"
    if spec is None:
        spec = default_dispatcher_spec()
        origin = f"{DISPATCHER_ENV} environment variable"
    if not isinstance(spec, str):
        raise TypeError(f"dispatcher spec must be a string or Dispatcher, got {type(spec).__name__}")
    kind, sep, count = spec.partition(":")
    kind = kind.strip().lower()
    if sep:
        if kind not in _THREAD_KINDS:
            raise ValueError(
                f"invalid {origin} {spec!r}: only the thread dispatcher takes a "
                f"worker count; accepted forms are {_ACCEPTED_SPECS}"
            )
        try:
            n_workers = int(count.strip())
        except ValueError:
            raise ValueError(
                f"invalid {origin} {spec!r}: {count.strip()!r} is not an integer "
                f"worker count; accepted forms are {_ACCEPTED_SPECS}"
            ) from None
        if n_workers <= 0:
            raise ValueError(
                f"invalid {origin} {spec!r}: worker count must be positive; "
                f"accepted forms are {_ACCEPTED_SPECS}"
            )
    if kind in _SERIAL_KINDS:
        return SerialDispatcher()
    if kind in _THREAD_KINDS:
        return ThreadDispatcher(n_workers)
    raise ValueError(
        f"unknown {origin} {spec!r}; accepted forms are {_ACCEPTED_SPECS}"
    )
