"""The sharded serving fleet: one front door over many replicated shards.

:class:`KNNFleet` is the multi-tenant, heavy-traffic face of the system:
the dataset is cut into shard regions by a
:class:`~repro.fleet.planner.ShardPlanner`, every shard is served by a
:class:`~repro.fleet.replica.ReplicaGroup` of identical
:class:`~repro.service.service.KNNService` instances, and queries are
answered by the :class:`~repro.fleet.router.Router`'s region-pruned
scatter-gather — byte-equal distances to a single unsharded service, at a
fan-out that shrinks as regions get tighter.

The fleet runs the same event-driven single-server queue model as the
service one level down: requests are admission-controlled
(:class:`~repro.fleet.admission.AdmissionController`) into a bounded
pending queue, dispatched in size-or-deadline micro-batches, and accounted
request by request — so the fleet-wide :meth:`KNNFleet.stats` reports
honest p50/p99 latency, QPS, shed/reject counts and measured fan-out.

Streaming mutations route to the owning shard (by region, id hash, or
round-robin, matching the plan) and are applied to every live replica of
its group.  Rebuilds are *background* per replica: the shard keeps serving
from the old index while the fresh one builds, then hot-swaps — with an
optional versioned snapshot trail under ``snapshot_root``
(``shardNN/replicaM/vNNNN`` + ``CURRENT`` pointers).

Every shard call travels the fleet's dispatch plane
(:mod:`repro.fleet.dispatch`): ``dispatcher="thread"`` runs owner and
scatter calls concurrently and enables hedged replica reads via
``hedge_after`` — with byte-identical answers to the default serial
dispatcher, because only wall-clock depends on completion order.  The
``REPRO_DISPATCHER`` environment variable sets the fleet-wide default.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.analysis.runtime import guarded, new_lock
from repro.fleet.admission import ADMIT, REJECT, SHED, AdmissionController, AdmissionPolicy
from repro.fleet.dispatch import Dispatcher, make_dispatcher
from repro.fleet.planner import ShardPlan, ShardPlanner
from repro.fleet.replica import Replica, ReplicaGroup, ShardUnavailableError
from repro.fleet.router import Router
from repro.kdtree.tree import KDTreeConfig
from repro.obs.clock import MONOTONIC, Clock
from repro.obs.collectors import fleet_families
from repro.obs.events import EventLog
from repro.obs.metrics import Histogram, ObsRegistry, log_buckets
from repro.obs.profiler import SamplingProfiler, phase, profile_hz
from repro.obs.server import OpsServer
from repro.obs.slo import SLO, SLOEngine, fleet_slos
from repro.obs.tracing import Tracer
from repro.service.backends import LocalTreeBackend
from repro.service.service import (
    KNNService,
    MicroBatchPolicy,
    RebuildPolicy,
    RecordRing,
    RequestRecord,
    _Pending,
    _check_precision,
)


class RequestRejectedError(KeyError):
    """The request was refused (or shed) by admission control."""


@guarded
class KNNFleet:
    """Region-routed, replicated, admission-controlled serving fleet.

    Build one with :meth:`KNNFleet.build`; the constructor wires
    pre-assembled parts (tests exercise it directly).

    The query/mutation API is single-caller (one driving thread, like
    :class:`KNNService` callers that share a service take its lock);
    only :meth:`close` is safe to race, guarded by ``_close_lock``.
    """

    GUARDED_BY = {"_closed": "_close_lock"}

    def __init__(
        self,
        plan: ShardPlan,
        groups: Sequence[ReplicaGroup],
        initial_ids: np.ndarray,
        k: int = 5,
        batch_policy: MicroBatchPolicy | None = None,
        admission_policy: AdmissionPolicy | None = None,
        retention: int = 65536,
        service_time: Callable[[int], float] | None = None,
        dispatcher: "Dispatcher | str | None" = None,
        hedge_after: "float | str | None" = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        slos: "List[SLO] | None" = None,
        slo_windows: "Tuple[Tuple[float, float], ...] | None" = None,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.plan = plan
        self.groups = list(groups)
        # Observability plane: one injectable clock for every wall-time
        # read, a sampled tracer (REPRO_OBS; off by default), a structured
        # ops event log, and a metrics registry scraping the whole fleet.
        self._clock = clock if clock is not None else MONOTONIC
        self.tracer = tracer if tracer is not None else Tracer(clock=self._clock)
        self.events = events if events is not None else EventLog(clock=self._clock)
        # Pre-assembled groups/replicas that came without an event sink get
        # shard/replica-scoped views of the fleet log (replica deaths,
        # heals, hedges, rebuild swaps all land in one stream).
        for group in self.groups:
            if group.events is None:
                group.events = self.events.scoped(shard=group.shard_id)
            for replica in group.replicas:
                if replica.service.events is None:
                    replica.service.events = self.events.scoped(
                        shard=group.shard_id, replica=replica.replica_id
                    )
        # A dispatcher built here from a spec (or the REPRO_DISPATCHER
        # default) is owned and closed with the fleet; a passed-in instance
        # stays owned by the caller.
        self._owns_dispatcher = not isinstance(dispatcher, Dispatcher)
        self.dispatcher = make_dispatcher(dispatcher)
        if hedge_after is not None:
            for group in self.groups:
                group.hedge_after = hedge_after
        self.router = Router(plan, self.groups, dispatcher=self.dispatcher, clock=self._clock)
        self.metrics = ObsRegistry()
        self._latency_hist = self.metrics.histogram(
            "repro_fleet_request_latency_seconds",
            "End-to-end request latency (arrival to completion, logical time).",
            buckets=log_buckets(1e-6, 10.0, 3),
        )
        self._batch_hist = self.metrics.histogram(
            "repro_fleet_batch_size",
            "Dispatched micro-batch sizes.",
            buckets=log_buckets(1.0, 4096.0, 3),
        )
        self.metrics.register_callback(lambda: fleet_families(self))
        self.k = k
        self.batch_policy = batch_policy or MicroBatchPolicy()
        self.admission = AdmissionController(admission_policy)
        self.records: RecordRing = RecordRing(retention)
        self._service_time = service_time
        self._pending: List[_Pending] = []
        # Set when a dispatch failed on a fully-dead shard and its batch was
        # requeued: automatic (deadline/size-trigger) dispatching pauses so
        # the poisoned batch cannot wedge unrelated operations; an explicit
        # flush() retries it (e.g. after heal()).
        self._stalled = False
        self._results: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._result_order: Deque[int] = deque()
        # The rejection ledger is ring-bounded like every other per-request
        # structure: a long-lived fleet under sustained overload must not
        # grow without bound precisely when it is overloaded.
        self._rejected: Set[int] = set()
        self._rejected_order: Deque[int] = deque()
        self._now = 0.0
        self._server_free_at = 0.0
        self._next_request_id = 0
        self._last_arrival: float | None = None
        self._ewma_gap: float | None = None
        self._dims = int(self.groups[0].replicas[0].service.backend.dims)
        initial_ids = np.asarray(initial_ids, dtype=np.int64)
        self._id_to_shard: Dict[int, int] = {
            int(i): int(s) for i, s in zip(initial_ids, plan.assignment)
        }
        self._n_assigned = int(initial_ids.shape[0])
        self._next_auto_id = int(initial_ids.max()) + 1 if initial_ids.size else 0
        self._close_lock = new_lock("KNNFleet._close_lock")
        self._closed = False
        # Active ops surface: a declarative SLO engine re-evaluated on
        # every dispatch and scrape (custom ``slos`` override the standard
        # latency/availability/survival set), the always-on sampling
        # profiler armed only via REPRO_PROFILE, and the HTTP ops server
        # started lazily by serve_ops().
        self.slo = SLOEngine(
            slos if slos is not None else fleet_slos(self, windows=slo_windows),
            clock=self._clock,
            events=self.events,
        )
        self.metrics.register_callback(self.slo.families)
        hz = profile_hz()
        self.profiler: SamplingProfiler | None = (
            SamplingProfiler(hz=hz).start() if hz > 0 else None
        )
        self._ops_server: OpsServer | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        points: np.ndarray,
        ids: np.ndarray | None = None,
        n_shards: int = 4,
        n_replicas: int = 1,
        strategy: str = "tree",
        k: int = 5,
        config: KDTreeConfig | None = None,
        batch_policy: MicroBatchPolicy | None = None,
        admission_policy: AdmissionPolicy | None = None,
        rebuild_policy: RebuildPolicy | None = None,
        retention: int = 65536,
        snapshot_root: str | Path | None = None,
        service_time: Callable[[int], float] | None = None,
        dispatcher: "Dispatcher | str | None" = None,
        hedge_after: "float | str | None" = None,
        clock: Clock | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        precision: str | None = None,
        slos: "List[SLO] | None" = None,
        slo_windows: "Tuple[Tuple[float, float], ...] | None" = None,
    ) -> "KNNFleet":
        """Plan, shard, replicate and wire a fleet over ``points``.

        Every replica service runs with ``background_rebuild=True`` (the
        old index serves during policy-triggered rebuilds) and, when
        ``snapshot_root`` is given, writes versioned snapshots under
        ``snapshot_root/shardNN/replicaM/``.  ``dispatcher`` selects the
        dispatch plane (``None`` consults ``REPRO_DISPATCHER``, falling
        back to serial); ``hedge_after`` arms hedged replica reads (a
        seconds deadline or a ``"p95"``-style latency percentile) on every
        group — it needs a concurrent dispatcher to have any effect.

        ``precision`` sets every shard index's distance-kernel tier
        (``"float64"`` / ``"float32"``; ``None`` keeps the config's tier,
        itself defaulting via ``REPRO_PRECISION``).  Per-request overrides
        through :meth:`submit` / :meth:`query` fall back to this index
        tier; answers are certified byte-identical either way.

        ``clock`` / ``tracer`` / ``events`` inject the observability
        plane (see :mod:`repro.obs`): one monotonic clock threaded through
        every wall-time read, a sampled per-batch tracer (``REPRO_OBS``),
        and the structured ops event log.  All default to real-clock /
        env-controlled instances; :meth:`metrics_text` works either way.
        """
        if n_replicas <= 0:
            raise ValueError(f"n_replicas must be positive, got {n_replicas}")
        if precision is not None:
            config = dataclasses.replace(config or KDTreeConfig(), precision=precision)
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        n = points.shape[0]
        ids = np.arange(n, dtype=np.int64) if ids is None else np.asarray(ids, dtype=np.int64)
        if ids.size and int(ids.min()) < 0:
            # -1 is the padding sentinel of every answer path; a negative id
            # would be silently masked out of all merged results.
            raise ValueError("ids must be non-negative (-1 is the padding sentinel)")
        if np.unique(ids).size != ids.shape[0]:
            raise ValueError("initial ids must be unique")
        plan = ShardPlanner(n_shards, strategy=strategy).plan(points, ids)
        if np.bincount(plan.assignment, minlength=n_shards).min() == 0:
            # Only the non-spatial strategies can get here (the tree planner
            # rejects empty regions itself): e.g. hash-sharding ids that all
            # share a residue class.
            raise ValueError(f"{strategy!r} plan left a shard empty; use fewer shards")
        groups: List[ReplicaGroup] = []
        for shard in range(n_shards):
            mask = plan.assignment == shard
            # One deterministic build per shard; replicas wrap the same
            # immutable tree (every mutation path refits into a NEW backend,
            # so sharing the initial tree is safe and cuts build cost by
            # the replica factor).
            shard_backend = LocalTreeBackend.fit(points[mask], ids=ids[mask], config=config)
            replicas = []
            for r in range(n_replicas):
                root = (
                    Path(snapshot_root) / f"shard{shard:02d}" / f"replica{r}"
                    if snapshot_root is not None
                    else None
                )
                service = KNNService(
                    shard_backend if r == 0 else LocalTreeBackend(shard_backend.tree),
                    k=k,
                    rebuild_policy=rebuild_policy,
                    # Replicas answer through the router, not their own
                    # micro-batch queue, so the per-service result cache
                    # would never be consulted: disable it.
                    cache_capacity=0,
                    service_time=service_time,
                    background_rebuild=True,
                    snapshot_root=root,
                    clock=clock,
                )
                replicas.append(Replica(shard, r, service))
            groups.append(ReplicaGroup(shard, replicas, clock=clock))
        return cls(
            plan,
            groups,
            ids,
            k=k,
            batch_policy=batch_policy,
            admission_policy=admission_policy,
            retention=retention,
            service_time=service_time,
            dispatcher=dispatcher,
            hedge_after=hedge_after,
            clock=clock,
            tracer=tracer,
            events=events,
            slos=slos,
            slo_windows=slo_windows,
        )

    def close(self) -> None:
        """Release every replica's backend resources (and the dispatcher's
        worker pools, when the fleet owns it).

        Idempotent and safe under concurrent callers: exactly one caller
        wins the ``_closed`` flag and performs the teardown.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        # Ops surface first: no HTTP handler should observe a half-closed
        # fleet, and the profiler must stop before its target threads die.
        if self._ops_server is not None:
            self._ops_server.close()
        if self.profiler is not None:
            self.profiler.stop()
        for group in self.groups:
            for replica in group.replicas:
                replica.service.close()
        if self._owns_dispatcher:
            self.dispatcher.close()

    def __enter__(self) -> "KNNFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def now(self) -> float:
        """Current logical time (max event time seen so far)."""
        return self._now

    @property
    def n_pending(self) -> int:
        """Requests queued but not yet dispatched."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has won the teardown race."""
        with self._close_lock:
            return self._closed

    @property
    def latency_histogram(self) -> Histogram:
        """The end-to-end request latency histogram (logical seconds)."""
        return self._latency_hist

    def latency_quantile(self, q: float) -> float:
        """Interpolated end-to-end latency quantile from the histogram.

        Unlike the retained-window order statistics this covers *every*
        completed request since fleet start at O(buckets) cost — the
        source :meth:`stats` and the SLO engine report from.
        """
        return self._latency_hist.quantile(q)

    def serve_ops(self, host: str = "127.0.0.1", port: int = 0) -> OpsServer:
        """Start (or return) the HTTP ops endpoint bound to this fleet.

        ``port=0`` binds an ephemeral port — read ``.port``/``.url`` on
        the returned :class:`~repro.obs.server.OpsServer`.  The server is
        owned by the fleet and torn down in :meth:`close`; calling again
        after an explicit ``server.close()`` starts a fresh one.
        """
        if self._ops_server is None or self._ops_server.closed:
            self._ops_server = OpsServer(self, host=host, port=port)
        return self._ops_server

    @property
    def n_live(self) -> int:
        """Live points across every shard."""
        return sum(group.n_live for group in self.groups)

    def target_batch_size(self) -> int:
        """Current micro-batch target under the (possibly adaptive) policy."""
        policy = self.batch_policy
        if not policy.adaptive or self._ewma_gap is None or self._ewma_gap <= 0:
            return policy.max_batch
        target = int(policy.max_delay_s / self._ewma_gap)
        return int(np.clip(target, policy.min_batch, policy.max_batch))

    def stats(self) -> Dict[str, object]:
        """Fleet-wide aggregated statistics.

        One flat latency summary (p50/p99/mean/max, QPS — same keys as
        :meth:`KNNService.latency_summary`) plus the admission ledger, the
        router's measured fan-out, and a per-shard health row.
        """
        summary: Dict[str, object] = dict(self.records.summary())
        # The retained-window order statistics are replaced by histogram
        # interpolation: same keys, but covering every completed request
        # since fleet start (and identical to what /metrics and the SLO
        # engine see), not just the last ``retention`` records.
        summary["p50_latency_s"] = self.latency_quantile(0.5)
        summary["p99_latency_s"] = self.latency_quantile(0.99)
        summary["slo"] = self.slo.status()
        summary["admission"] = self.admission.stats.as_dict()
        summary["router"] = self.router.stats.as_dict()
        dispatch: Dict[str, object] = dict(self.dispatcher.stats.as_dict())
        dispatch["dispatcher"] = self.dispatcher.name
        dispatch["hedges"] = float(sum(g.hedges for g in self.groups))
        dispatch["hedge_wins"] = float(sum(g.hedge_wins for g in self.groups))
        dispatch["hedge_cancels"] = float(sum(g.hedge_cancels for g in self.groups))
        summary["dispatch"] = dispatch
        summary["n_live"] = float(self.n_live)
        summary["shards"] = [
            {
                "shard": group.shard_id,
                "n_live": group.n_live,
                "replicas_alive": group.n_alive,
                "replicas": group.n_replicas,
                "rebuilds": group.rebuilds,
                "retries": group.retries,
                "deaths": group.deaths,
                "hedges": group.hedges,
            }
            for group in self.groups
        ]
        return summary

    def metrics_text(self) -> str:
        """One Prometheus text-format (0.0.4) scrape of the whole fleet.

        Combines the registry's own instruments (latency / batch-size
        histograms) with every scrape-time collector family
        (:func:`repro.obs.collectors.fleet_families`): admission ledger,
        router phases and fan-out, dispatch-plane counters, per-replica
        health and load, per-service cache/rebuild accounting, executor
        byte totals (distributed backends), ops event counts and tracer
        sampling stats.  The output round-trips through the strict parser
        in :func:`repro.obs.prometheus.parse_prometheus_text`.
        """
        return self.metrics.render()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        at: float | None = None,
        precision: str | None = None,
    ) -> int:
        """Enqueue one query through admission control; returns its id.

        A rejected (or later shed) request id still resolves — to a
        :class:`RequestRejectedError` from :meth:`result` — so open-loop
        drivers can account every offered request.  Like answers, the
        rejection ledger is bounded by the retention capacity: ids of
        rejections older than the most recent ``retention`` are evicted and
        resolve to a plain ``KeyError``.

        ``precision`` overrides the shard indices' distance-kernel tier
        for this request (``None`` serves at the index tier); certified
        identity makes the answer the same bytes either way.
        """
        k = self.k if k is None else k
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        _check_precision(precision)
        query = np.asarray(query, dtype=np.float64).ravel()
        if query.shape[0] != self._dims:
            raise ValueError(f"query has {query.shape[0]} dims, fleet has {self._dims}")
        arrival = self._advance(at)
        self._note_arrival(arrival)
        request_id = self._next_request_id
        self._next_request_id += 1

        verdict = self.admission.on_submit(len(self._pending))
        if verdict == REJECT:
            self._note_rejected(request_id)
            self.events.emit(
                "admission_reject", request_id=request_id, queue_depth=len(self._pending)
            )
            return request_id
        if verdict == SHED:
            victim = self._pending.pop(0)
            self._note_rejected(victim.request_id)
            self.events.emit(
                "admission_shed",
                request_id=victim.request_id,
                shed_for=request_id,
                queue_depth=len(self._pending),
            )
        self._pending.append(_Pending(request_id, arrival, k, query, precision))
        if len(self._pending) >= self.target_batch_size():
            # Quiet on a dead shard: the request was admitted and stays
            # queued (the failed dispatch requeued its batch and latched
            # the stall); the caller must still get the id so the answer
            # is reachable after a heal() + flush().
            self._dispatch_quietly(arrival)
        return request_id

    def query(
        self,
        query: np.ndarray,
        k: int | None = None,
        at: float | None = None,
        precision: str | None = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Interactive single query: submit, flush, return ``(distances, ids)``.

        As explicit as :meth:`flush`, so a batch stalled on a dead shard is
        retried here too — the caller gets either the answer or the real
        :class:`~repro.fleet.replica.ShardUnavailableError`, never a
        misleading still-pending ``KeyError``.
        """
        request_id = self.submit(query, k=k, at=at, precision=precision)
        if request_id not in self._results and request_id not in self._rejected:
            self._dispatch(self._now, retry_stalled=True)
        return self.result(request_id)

    def result(self, request_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` of a completed request.

        Raises :class:`RequestRejectedError` for requests refused or shed
        by admission control, ``KeyError`` when still pending or evicted.
        """
        if request_id in self._rejected:
            raise RequestRejectedError(f"request {request_id} was rejected by admission control")
        if request_id not in self._results:
            raise KeyError(
                f"request {request_id} has no result (still pending, or its answer/"
                f"rejection was evicted by the retention ring of {self.records.capacity})"
            )
        return self._results[request_id]

    def flush(self, at: float | None = None) -> int:
        """Dispatch everything queued; returns the number dispatched.

        An explicit flush also retries a batch stalled by a fully-dead
        shard (after a :meth:`heal`, say); automatic dispatching never
        does, so one poisoned batch cannot wedge unrelated traffic.
        """
        now = self._advance(at)
        return self._dispatch(now, retry_stalled=True)

    def drain(self, at: float | None = None) -> int:
        """Alias of :meth:`flush` for end-of-trace use."""
        return self.flush(at)

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------
    def insert(
        self, points: np.ndarray, ids: np.ndarray | None = None, at: float | None = None
    ) -> np.ndarray:
        """Add points to the fleet's live set; returns their ids.

        Each point routes to one shard (by region, id hash, or round-robin
        — whatever the plan prescribes) and lands on every live replica of
        that shard's group.  Auto ids continue above the largest id ever
        indexed fleet-wide.
        """
        now = self._advance(at)
        # Quiet flush: a batch stalled on a dead shard must not block a
        # mutation whose own target shards are healthy (the stuck queries
        # answer against the then-current live set once retried).
        self._dispatch_quietly(now)
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if points.shape[1] != self._dims:
            raise ValueError(f"points have {points.shape[1]} dims, fleet has {self._dims}")
        if ids is None:
            ids = np.arange(
                self._next_auto_id, self._next_auto_id + points.shape[0], dtype=np.int64
            )
        else:
            ids = np.asarray(ids, dtype=np.int64)
            # The whole batch is validated before any shard is touched: a
            # bad id must not leave some groups mutated and others not.
            if ids.size and int(ids.min()) < 0:
                raise ValueError("ids must be non-negative (-1 is the padding sentinel)")
            if np.unique(ids).size != ids.shape[0]:
                raise ValueError("duplicate ids within one insert batch")
            live = [int(i) for i in ids if int(i) in self._id_to_shard]
            if live:
                raise ValueError(f"ids already indexed: {live[:5]}")
        shards = self.plan.assign(points, ids, self._n_assigned)
        # Atomicity: no group is touched unless every target shard can
        # accept the mutation (a fully-dead shard would otherwise leave the
        # batch half-applied).
        self._require_alive(np.unique(shards))
        for shard in np.unique(shards):
            rows = shards == shard
            self.groups[shard].insert(points[rows], ids[rows], at=now)
        # Counters move only after every shard accepted its slice, so a
        # failed batch cannot shift future round-robin assignment.
        self._n_assigned += points.shape[0]
        for i, s in zip(ids, shards):
            self._id_to_shard[int(i)] = int(s)
        if ids.size:
            self._next_auto_id = max(self._next_auto_id, int(ids.max()) + 1)
        return ids

    def delete(self, ids: np.ndarray | Sequence[int], at: float | None = None) -> None:
        """Remove points by id from whichever shards hold them."""
        now = self._advance(at)
        self._dispatch_quietly(now)
        id_list = [int(i) for i in np.asarray(ids, dtype=np.int64).ravel()]
        seen: Set[int] = set()
        for point_id in id_list:
            if point_id not in self._id_to_shard or point_id in seen:
                raise KeyError(f"id {point_id} is not in the live set")
            seen.add(point_id)
        by_shard: Dict[int, List[int]] = {}
        for point_id in id_list:
            by_shard.setdefault(self._id_to_shard[point_id], []).append(point_id)
        self._require_alive(np.fromiter(by_shard.keys(), dtype=np.int64, count=len(by_shard)))
        for shard, shard_ids in sorted(by_shard.items()):
            self.groups[shard].delete(np.array(shard_ids, dtype=np.int64), at=now)
        for point_id in id_list:
            del self._id_to_shard[point_id]

    def begin_rebuild(self, shard: int | None = None, at: float | None = None) -> None:
        """Kick a background rebuild on every replica of one/all shards.

        The shards keep serving from their old indices; the fresh builds
        hot-swap in once their logical completion times pass.
        """
        now = self._advance(at)
        targets = self.groups if shard is None else [self.groups[shard]]
        for group in targets:
            for replica in group.replicas:
                if replica.alive:
                    replica.service.begin_background_rebuild(at=now)

    # ------------------------------------------------------------------
    # Failure injection / repair
    # ------------------------------------------------------------------
    def kill_replica(self, shard: int, replica: int) -> None:
        """Fail a replica immediately (chaos drill)."""
        self.groups[shard].replicas[replica].kill()
        self.groups[shard].note_death(replica_id=replica)

    def arm_replica_failure(self, shard: int, replica: int) -> None:
        """Make a replica die mid-query on its next pick (retry drill)."""
        self.groups[shard].replicas[replica].arm_failure()

    def heal(self, at: float | None = None) -> int:
        """Re-seed every dead replica that has a live peer; returns count.

        A fully-dead group is skipped, not fatal — it has no donor left, and
        aborting on it would strand healable replicas in *other* groups.
        """
        now = self._advance(at)
        healed = 0
        for group in self.groups:
            if 0 < group.n_alive < group.n_replicas:
                healed += group.heal(at=now)
        return healed

    # ------------------------------------------------------------------
    # Internals (same event-driven queue model as KNNService)
    # ------------------------------------------------------------------
    def _advance(self, at: float | None) -> float:
        now = max(self._now, self._server_free_at) if at is None else float(at)
        if now < self._now:
            raise ValueError(f"time went backwards: {now} < {self._now}")
        policy = self.batch_policy
        while self._pending and not self._stalled:
            deadline = self._pending[0].arrival + policy.max_delay_s
            if deadline > now:
                break
            # Quiet on a dead shard: a poisoned batch must not fail the
            # unrelated operation that merely advanced the clock (the
            # stall latch pauses further automatic dispatching; an
            # explicit flush() surfaces the error).
            self._dispatch_quietly(deadline)
        self._now = max(self._now, now)
        return now

    def _dispatch_quietly(self, flush_time: float) -> int:
        """Automatic dispatch: a fully-dead shard stalls instead of raising."""
        try:
            return self._dispatch(flush_time)
        except ShardUnavailableError:
            return 0

    def _note_arrival(self, arrival: float) -> None:
        if self._last_arrival is not None:
            gap = max(arrival - self._last_arrival, 1e-9)
            alpha = self.batch_policy.ewma_alpha
            self._ewma_gap = (
                gap if self._ewma_gap is None else (1 - alpha) * self._ewma_gap + alpha * gap
            )
        self._last_arrival = arrival

    def _dispatch(self, flush_time: float, retry_stalled: bool = False) -> int:
        if self._stalled:
            if not retry_stalled:
                return 0
            self._stalled = False
        split = 0
        while split < len(self._pending) and self._pending[split].arrival <= flush_time:
            split += 1
        batch = self._pending[:split]
        if not batch:
            return 0
        self._pending = self._pending[split:]

        dispatch_start = max(flush_time, self._server_free_at)
        trace = self.tracer.start()
        started = self._clock.monotonic()
        if trace is not None:
            ledger = self.admission.stats.as_dict()
            trace.instant(
                "admission",
                "admission",
                batch=len(batch),
                queued=len(self._pending),
                admitted=ledger.get("admitted", 0),
                rejected=ledger.get("rejected", 0),
                shed=ledger.get("shed", 0),
            )
        answers: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        stats_before = dataclasses.replace(self.router.stats)
        load_before = {
            (g.shard_id, r.replica_id): r.queries_served
            for g in self.groups
            for r in g.replicas
        }
        try:
            with phase("fleet.batch"):
                for k, prec_key in sorted({(r.k, r.precision or "") for r in batch}):
                    precision = prec_key or None
                    group = [r for r in batch if r.k == k and (r.precision or "") == prec_key]
                    queries = np.stack([r.query for r in group])
                    k_mark = trace.mark() if trace is not None else 0
                    k_start = self._clock.monotonic()
                    d, i = self.router.answer(
                        queries, k, at=flush_time, trace=trace, precision=precision
                    )
                    if trace is not None:
                        trace.fold(
                            k_mark,
                            f"router k={k}",
                            "router",
                            k_start,
                            self._clock.monotonic(),
                            k=k,
                            queries=len(group),
                        )
                    for row, r in enumerate(group):
                        answers[r.request_id] = (d[row], i[row])
        except ShardUnavailableError:
            # A shard went fully dark mid-dispatch: the batch stays queued
            # (in arrival order) so a heal() + flush() can still answer it,
            # instead of dropping every request into a resultless limbo.
            # The stall latch pauses automatic dispatching so the poisoned
            # batch cannot wedge every later operation, and router counters
            # and replica load roll back — the retry re-counts the batch,
            # and fan-out/least-loaded accounting must track completed
            # queries only.  (Deaths and retries are NOT rolled back: a
            # replica that died mid-attempt really died.)
            self.router.stats = stats_before
            for g in self.groups:
                for r in g.replicas:
                    r.restore_load(load_before[(g.shard_id, r.replica_id)])
            self._pending = batch + self._pending
            self._stalled = True
            self.tracer.finish(
                trace,
                "fleet.batch",
                started,
                self._clock.monotonic(),
                batch=len(batch),
                error="ShardUnavailableError",
            )
            raise
        ended = self._clock.monotonic()
        elapsed = ended - started
        if self._service_time is not None:
            elapsed = float(self._service_time(len(batch)))
        completion = dispatch_start + elapsed
        self._server_free_at = completion
        self._now = max(self._now, flush_time)

        self.tracer.finish(
            trace, "fleet.batch", started, ended, batch=len(batch), flush_time=flush_time
        )
        self._batch_hist.observe(float(len(batch)))
        for r in batch:
            self._latency_hist.observe(completion - r.arrival)
            self._store_result(r.request_id, answers[r.request_id])
            self.records.append(
                RequestRecord(
                    r.request_id, r.arrival, dispatch_start, completion,
                    cache_hit=False, batch_size=len(batch),
                )
            )
        # Re-evaluate the burn-rate windows while the batch's latency
        # observations are fresh — breaches fire at dispatch time, not at
        # the next scrape.
        self.slo.tick()
        return len(batch)

    def _store_result(self, request_id: int, value: Tuple[np.ndarray, np.ndarray]) -> None:
        self._results[request_id] = value
        self._result_order.append(request_id)
        while len(self._result_order) > self.records.capacity:
            self._results.pop(self._result_order.popleft(), None)

    def _require_alive(self, shards: np.ndarray) -> None:
        """Fail before mutating anything if a target shard is fully dead."""
        for shard in shards:
            if self.groups[shard].n_alive == 0:
                raise ShardUnavailableError(f"shard {int(shard)}: every replica is dead")

    def _note_rejected(self, request_id: int) -> None:
        self._rejected.add(request_id)
        self._rejected_order.append(request_id)
        while len(self._rejected_order) > self.records.capacity:
            self._rejected.discard(self._rejected_order.popleft())
