"""Sharded serving fleet: region-routed scatter-gather over replicated shards.

The paper's thesis — KNN at extreme scale through space partitioning, so
each query touches only the ranks whose regions can hold a neighbour —
applied one level up, to a fleet of online services:

* :mod:`~repro.fleet.planner` — :class:`ShardPlanner` cuts the dataset into
  shard regions with the same recursive median splits as the global
  kd-tree's top levels (hash / round-robin fallbacks for geometry-free
  data);
* :mod:`~repro.fleet.replica` — :class:`ReplicaGroup` serves each shard
  from identical replicas: least-loaded reads, failure injection, retry on
  a replica dying mid-query;
* :mod:`~repro.fleet.router` — :class:`Router` answers by pruned
  scatter-gather: owner shard first, then only the shards whose region box
  intersects the k-th-distance ball, merged exactly;
* :mod:`~repro.fleet.admission` — bounded pending queue with shed/reject
  accounting;
* :mod:`~repro.fleet.dispatch` — the dispatch plane: every shard/replica
  call is a :class:`ShardCall` submitted to a pluggable
  :class:`Dispatcher` (:class:`SerialDispatcher` reproduces the historical
  synchronous call order; :class:`ThreadDispatcher` runs calls
  concurrently with byte-identical answers);
* :mod:`~repro.fleet.fleet` — :class:`KNNFleet`, the front door tying the
  above together with micro-batching, background rebuild hot-swap per
  replica, and fleet-wide aggregated statistics.

Fleet answers are exact: identical distances to one unsharded
:class:`~repro.service.service.KNNService` over the same live set (tie
identity at the k-th distance unspecified, as everywhere in this
codebase).
"""

from repro.fleet.admission import AdmissionController, AdmissionPolicy, AdmissionStats
from repro.fleet.dispatch import (
    DispatchStats,
    Dispatcher,
    SerialDispatcher,
    ShardCall,
    ThreadDispatcher,
    make_dispatcher,
)
from repro.fleet.fleet import KNNFleet, RequestRejectedError
from repro.fleet.planner import ShardPlan, ShardPlanner
from repro.fleet.replica import (
    Replica,
    ReplicaDeadError,
    ReplicaGroup,
    ShardUnavailableError,
)
from repro.fleet.router import Router, RouterStats

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionStats",
    "Dispatcher",
    "DispatchStats",
    "KNNFleet",
    "RequestRejectedError",
    "SerialDispatcher",
    "ShardCall",
    "ShardPlan",
    "ShardPlanner",
    "Replica",
    "ReplicaDeadError",
    "ReplicaGroup",
    "ShardUnavailableError",
    "Router",
    "RouterStats",
    "ThreadDispatcher",
    "make_dispatcher",
]
