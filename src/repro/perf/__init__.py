"""Performance-measurement harness: timers, scaling runners and reports.

These utilities drive the paper-reproduction experiments: they sweep rank
or thread counts, collect modeled (cost-model) and measured (wall-clock)
times, convert them to the speedup series the paper plots, and format the
text tables the benchmark harness prints.
"""

from repro.perf.timers import Stopwatch, WallTimer
from repro.perf.speedup import parallel_efficiency, speedup_series
from repro.perf.scaling import (
    ScalingPoint,
    ScalingResult,
    run_strong_scaling,
    run_thread_scaling,
    run_weak_scaling,
)
from repro.perf.report import (
    BENCH_SCHEMA_VERSION,
    RESULTS_DIR,
    format_breakdown,
    format_scaling,
    format_table,
    run_metadata,
    write_bench_artifact,
)

__all__ = [
    "WallTimer",
    "Stopwatch",
    "BENCH_SCHEMA_VERSION",
    "RESULTS_DIR",
    "run_metadata",
    "write_bench_artifact",
    "speedup_series",
    "parallel_efficiency",
    "ScalingPoint",
    "ScalingResult",
    "run_strong_scaling",
    "run_weak_scaling",
    "run_thread_scaling",
    "format_table",
    "format_scaling",
    "format_breakdown",
]
