"""Plain-text report formatting (tables, scaling series, breakdowns).

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent and readable
in terminal output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but there are {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_scaling(
    resources: Sequence[int],
    series: Mapping[str, Sequence[float]],
    resource_label: str = "ranks",
    title: str | None = None,
) -> str:
    """Render one or more series against a shared resource axis."""
    headers = [resource_label] + list(series.keys())
    rows = []
    for i, res in enumerate(resources):
        row: List[object] = [res]
        for values in series.values():
            row.append(values[i])
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_breakdown(breakdown: Mapping[str, float], title: str | None = None, as_percent: bool = True) -> str:
    """Render a phase breakdown (fractions shown as percentages)."""
    rows = []
    for label, value in breakdown.items():
        rows.append([label, f"{value * 100:.1f}%" if as_percent else value])
    return format_table(["phase", "share" if as_percent else "seconds"], rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)
