"""Plain-text report formatting (tables, scaling series, breakdowns).

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent and readable
in terminal output and in EXPERIMENTS.md.

This module also owns the benchmark-artifact schema: every ``BENCH_*.json``
payload is stamped with :data:`BENCH_SCHEMA_VERSION` and the
:func:`run_metadata` block (git SHA, host CPU count, platform), so
perf-trajectory tooling can tell apart format changes from machine changes.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

#: Version of the ``BENCH_*.json`` artifact layout.  Bump when keys move or
#: change meaning; comparison tooling refuses to diff across versions.
BENCH_SCHEMA_VERSION = 2

#: Repository root (three levels above ``src/repro/perf``); the canonical
#: bench-artifact directory hangs off it.
_REPO_ROOT = Path(__file__).resolve().parents[3]

#: Canonical location of every ``BENCH_*.json`` artifact.
RESULTS_DIR = _REPO_ROOT / "benchmarks" / "results"


def run_metadata() -> Dict[str, object]:
    """Provenance block stamped into every benchmark artifact.

    Best-effort by design: a missing git binary (or a non-repo checkout)
    yields ``git_sha: None`` rather than a failed benchmark run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "git_sha": sha,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
    }


def write_bench_artifact(name: str, payload: Mapping[str, object]) -> Path:
    """Write one ``BENCH_*.json`` artifact to its canonical locations.

    The single write-path for every benchmark: the payload lands in
    :data:`RESULTS_DIR` (``benchmarks/results/``, created on demand) and a
    byte-identical copy at the repository root, where CI's existence
    assertions and quick ``cat BENCH_*.json`` inspection expect it.
    Returns the canonical (results-dir) path.
    """
    if not name.endswith(".json"):
        raise ValueError(f"bench artifact name must end in .json, got {name!r}")
    text = json.dumps(payload, indent=2)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    canonical = RESULTS_DIR / name
    canonical.write_text(text)
    (_REPO_ROOT / name).write_text(text)
    return canonical


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None) -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells but there are {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_scaling(
    resources: Sequence[int],
    series: Mapping[str, Sequence[float]],
    resource_label: str = "ranks",
    title: str | None = None,
) -> str:
    """Render one or more series against a shared resource axis."""
    headers = [resource_label] + list(series.keys())
    rows = []
    for i, res in enumerate(resources):
        row: List[object] = [res]
        for values in series.values():
            row.append(values[i])
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_breakdown(breakdown: Mapping[str, float], title: str | None = None, as_percent: bool = True) -> str:
    """Render a phase breakdown (fractions shown as percentages)."""
    rows = []
    for label, value in breakdown.items():
        rows.append([label, f"{value * 100:.1f}%" if as_percent else value])
    return format_table(["phase", "share" if as_percent else "seconds"], rows, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0.0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)
