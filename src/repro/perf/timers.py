"""Lightweight wall-clock timing helpers.

Both timers read time through the injectable clock protocol of
:mod:`repro.obs.clock` — real ``perf_counter`` by default, a
:class:`~repro.obs.clock.ManualClock` in deterministic tests — so every
ad-hoc timing site in the codebase shares one time source with the
observability plane.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.clock import MONOTONIC, Clock


class WallTimer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else MONOTONIC
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = self._clock.monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = self._clock.monotonic() - self._start


class Stopwatch:
    """Accumulates named time intervals (useful for phase-style timing)."""

    def __init__(self, clock: Clock | None = None) -> None:
        self._clock = clock if clock is not None else MONOTONIC
        self._laps: Dict[str, float] = {}
        self._order: List[str] = []
        self._current: str | None = None
        self._start = 0.0

    def start(self, name: str) -> None:
        """Start (or resume) timing the interval ``name``."""
        if self._current is not None:
            self.stop()
        if name not in self._laps:
            self._laps[name] = 0.0
            self._order.append(name)
        self._current = name
        self._start = self._clock.monotonic()

    def stop(self) -> None:
        """Stop the currently running interval."""
        if self._current is None:
            return
        self._laps[self._current] += self._clock.monotonic() - self._start
        self._current = None

    def laps(self) -> Dict[str, float]:
        """Accumulated seconds per interval, in start order."""
        self.stop()
        return {name: self._laps[name] for name in self._order}

    def total(self) -> float:
        """Total accumulated seconds across all intervals."""
        return sum(self.laps().values())
