"""Speedup and efficiency arithmetic for scaling studies."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def speedup_series(times: Sequence[float], baseline_index: int = 0) -> np.ndarray:
    """Speedup of each entry relative to ``times[baseline_index]``.

    This is how the paper normalises its strong-scaling figures (speedup
    compared to the smallest core count that fits the dataset).
    """
    times = np.asarray(times, dtype=np.float64)
    if times.size == 0:
        return times
    if not 0 <= baseline_index < times.size:
        raise ValueError(f"baseline_index {baseline_index} outside series of length {times.size}")
    baseline = times[baseline_index]
    if baseline <= 0.0:
        raise ValueError(f"baseline time must be positive, got {baseline}")
    with np.errstate(divide="ignore"):
        return baseline / times


def parallel_efficiency(
    times: Sequence[float], resources: Sequence[int], baseline_index: int = 0
) -> np.ndarray:
    """Speedup divided by the ideal speedup for each resource count."""
    resources = np.asarray(resources, dtype=np.float64)
    times_arr = np.asarray(times, dtype=np.float64)
    if resources.shape != times_arr.shape:
        raise ValueError("times and resources must have identical shapes")
    speedups = speedup_series(times_arr, baseline_index)
    ideal = resources / resources[baseline_index]
    return speedups / ideal


def normalized_times(times: Sequence[float], baseline_index: int = 0) -> np.ndarray:
    """Times divided by the baseline time (used for weak-scaling plots)."""
    times = np.asarray(times, dtype=np.float64)
    baseline = times[baseline_index]
    if baseline <= 0.0:
        raise ValueError(f"baseline time must be positive, got {baseline}")
    return times / baseline


def scaling_summary(
    resources: Sequence[int], times: Sequence[float], baseline_index: int = 0
) -> Dict[str, list]:
    """Bundle resources, times, speedups and efficiency into one dict."""
    speedups = speedup_series(times, baseline_index)
    efficiency = parallel_efficiency(times, resources, baseline_index)
    return {
        "resources": list(resources),
        "times": [float(t) for t in times],
        "speedup": [float(s) for s in speedups],
        "efficiency": [float(e) for e in efficiency],
    }
