"""Strong-, weak- and thread-scaling runners over the PANDA index.

Each runner executes the full PANDA pipeline (global tree + redistribution +
local trees + distributed queries) for every resource count in a sweep and
reports, per point:

* the modeled construction and query times from the cost model (these are
  what reproduce the paper's cluster-scale figures), and
* the measured wall-clock of the simulation itself (useful as a sanity
  check; it does not correspond to the paper's hardware).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.cluster.machine import MachineSpec
from repro.core.breakdown import CONSTRUCTION_PHASES, default_cost_model
from repro.core.config import PandaConfig
from repro.core.panda import PandaKNN
from repro.core.query_engine import QUERY_PHASES
from repro.kdtree.build import build_kdtree
from repro.kdtree.query import batch_knn
from repro.perf.speedup import speedup_series
from repro.perf.timers import WallTimer


@dataclass
class ScalingPoint:
    """One point of a scaling sweep."""

    resources: int
    construction_time: float
    query_time: float
    wall_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class ScalingResult:
    """A full scaling sweep with convenience accessors."""

    label: str
    points: List[ScalingPoint] = field(default_factory=list)

    def resources(self) -> List[int]:
        """Resource counts (ranks, cores or threads) in sweep order."""
        return [p.resources for p in self.points]

    def construction_times(self) -> List[float]:
        """Modeled construction time per sweep point."""
        return [p.construction_time for p in self.points]

    def query_times(self) -> List[float]:
        """Modeled query time per sweep point."""
        return [p.query_time for p in self.points]

    def construction_speedup(self) -> np.ndarray:
        """Construction speedup relative to the first sweep point."""
        return speedup_series(self.construction_times())

    def query_speedup(self) -> np.ndarray:
        """Query speedup relative to the first sweep point."""
        return speedup_series(self.query_times())


def run_strong_scaling(
    points: np.ndarray,
    queries: np.ndarray,
    rank_counts: Sequence[int],
    k: int = 5,
    machine: MachineSpec | None = None,
    threads_per_rank: int | None = None,
    config: PandaConfig | None = None,
    label: str = "strong",
) -> ScalingResult:
    """Fixed problem size, increasing rank counts (paper Fig. 4 / Fig. 8c)."""
    if not rank_counts:
        raise ValueError("rank_counts must not be empty")
    machine = machine or MachineSpec.edison()
    result = ScalingResult(label=label)
    for n_ranks in rank_counts:
        config_p = config or PandaConfig()
        with WallTimer() as timer:
            index = PandaKNN(
                n_ranks=n_ranks, machine=machine, threads_per_rank=threads_per_rank, config=config_p
            ).fit(points)
            report = index.query(queries, k=k)
        construction = index.construction_time().total_s
        query = index.query_time().total_s
        result.points.append(
            ScalingPoint(
                resources=n_ranks,
                construction_time=construction,
                query_time=query,
                wall_seconds=timer.elapsed,
                extra={
                    "load_imbalance": index.load_imbalance(),
                    "mean_remote_fanout": report.mean_remote_fanout,
                    "fraction_sent_remote": report.fraction_sent_remote,
                },
            )
        )
    return result


def run_weak_scaling(
    generator: Callable[[int, int], np.ndarray],
    points_per_rank: int,
    rank_counts: Sequence[int],
    query_fraction: float = 0.10,
    k: int = 5,
    machine: MachineSpec | None = None,
    threads_per_rank: int | None = None,
    config: PandaConfig | None = None,
    seed: int = 0,
    label: str = "weak",
) -> ScalingResult:
    """Constant points per rank, increasing rank counts (paper Fig. 5a).

    ``generator(n, seed)`` must return an ``(n, dims)`` array; the paper
    uses the cosmology family because it preserves density characteristics
    as it grows.
    """
    if points_per_rank <= 0:
        raise ValueError(f"points_per_rank must be positive, got {points_per_rank}")
    machine = machine or MachineSpec.edison()
    result = ScalingResult(label=label)
    rng = np.random.default_rng(seed)
    for n_ranks in rank_counts:
        n_points = points_per_rank * n_ranks
        points = np.asarray(generator(n_points, seed))
        n_queries = max(1, int(round(n_points * query_fraction)))
        q_idx = rng.choice(points.shape[0], size=min(n_queries, points.shape[0]), replace=False)
        queries = points[q_idx]
        config_p = config or PandaConfig()
        with WallTimer() as timer:
            index = PandaKNN(
                n_ranks=n_ranks, machine=machine, threads_per_rank=threads_per_rank, config=config_p
            ).fit(points)
            index.query(queries, k=k)
        result.points.append(
            ScalingPoint(
                resources=n_ranks,
                construction_time=index.construction_time().total_s,
                query_time=index.query_time().total_s,
                wall_seconds=timer.elapsed,
                extra={"n_points": float(n_points), "n_queries": float(queries.shape[0])},
            )
        )
    return result


def run_thread_scaling(
    points: np.ndarray,
    queries: np.ndarray,
    thread_counts: Sequence[int],
    k: int = 5,
    machine: MachineSpec | None = None,
    tree_config=None,
    label: str = "threads",
) -> ScalingResult:
    """Single-node thread sweep over construction and querying (paper Fig. 6).

    The kd-tree kernels execute once per thread count (their phase split
    depends on the thread count) and the cost model converts the recorded
    work into modeled time at that thread count, including the SMT regime
    beyond the physical core count.
    """
    if not thread_counts:
        raise ValueError("thread_counts must not be empty")
    machine = machine or MachineSpec.edison()
    from repro.cluster.metrics import MetricsRegistry
    from repro.cluster.cost_model import CostModel
    from repro.kdtree.tree import KDTreeConfig

    tree_config = tree_config or KDTreeConfig()
    result = ScalingResult(label=label)
    for threads in thread_counts:
        registry = MetricsRegistry(1)
        with WallTimer() as timer:
            tree = build_kdtree(points, config=tree_config, threads=threads)
            for name, counters in tree.stats.phase_counters.items():
                with registry.phase(name):
                    pass
                registry.rank(0).phase(name).merge(counters)
            with registry.phase("query_local_knn"):
                _, _, qstats = batch_knn(tree, queries, k)
                qstats.charge(registry.for_phase(0), tree.dims)
        model = CostModel(machine=machine, threads_per_rank=threads)
        construction = model.evaluate(
            registry, phases=[p for p in registry.phase_order if p != "query_local_knn"], threads=threads
        ).total_s
        query = model.evaluate(registry, phases=["query_local_knn"], threads=threads).total_s
        result.points.append(
            ScalingPoint(
                resources=threads,
                construction_time=construction,
                query_time=query,
                wall_seconds=timer.elapsed,
                extra={"tree_depth": float(tree.depth())},
            )
        )
    return result


def modeled_group_times(index: PandaKNN) -> Dict[str, float]:
    """Convenience: modeled construction vs query totals for a fitted index."""
    model = default_cost_model(index.cluster)
    groups = {
        "construction": list(CONSTRUCTION_PHASES),
        "query": list(QUERY_PHASES),
    }
    return model.evaluate_phase_groups(index.cluster.metrics, groups)
